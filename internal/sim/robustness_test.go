package sim

// Failure-injection tests: the engine must stay correct when the scheduler
// misbehaves or the configuration is hostile. A scheduling policy is
// user-supplied code; a bad one may produce bad JCTs but must never corrupt
// conservation, lose jobs, or hang the engine.

import (
	"math"
	"testing"

	"gurita/internal/coflow"
	"gurita/internal/netmod"
)

// chaoticSched assigns wildly out-of-range and oscillating queues.
type chaoticSched struct{ calls int }

func (s *chaoticSched) Name() string                  { return "chaotic" }
func (s *chaoticSched) Init(Env)                      {}
func (s *chaoticSched) OnJobArrival(*JobState)        {}
func (s *chaoticSched) OnCoflowStart(*CoflowState)    {}
func (s *chaoticSched) OnCoflowComplete(*CoflowState) {}
func (s *chaoticSched) OnJobComplete(*JobState)       {}
func (s *chaoticSched) AssignQueues(_ float64, fl, _, dirty []*FlowState) []*FlowState {
	s.calls++
	for i, f := range fl {
		switch (s.calls + i) % 4 {
		case 0:
			f.SetQueue(-100)
		case 1:
			f.SetQueue(1 << 20)
		case 2:
			f.SetQueue(0)
		default:
			f.SetQueue(3)
		}
		// Queues oscillate every call, so report everything as dirty
		// (over-reporting is allowed by the contract).
		dirty = append(dirty, f)
	}
	return dirty
}

// lazySched never assigns queues at all (zero-value queue 0 everywhere).
type lazySched struct{}

func (lazySched) Name() string                                                  { return "lazy" }
func (lazySched) Init(Env)                                                      {}
func (lazySched) OnJobArrival(*JobState)                                        {}
func (lazySched) OnCoflowStart(*CoflowState)                                    {}
func (lazySched) OnCoflowComplete(*CoflowState)                                 {}
func (lazySched) OnJobComplete(*JobState)                                       {}
func (lazySched) AssignQueues(_ float64, _, _, dirty []*FlowState) []*FlowState { return dirty }

func hostileWorkload(t *testing.T) []*coflow.Job {
	t.Helper()
	var cid coflow.CoflowID
	var fid coflow.FlowID
	var jobs []*coflow.Job
	for i := 0; i < 12; i++ {
		b := coflow.NewBuilder(coflow.JobID(i), float64(i%3)*0.1, &cid, &fid)
		prev := -1
		for st := 0; st < 1+i%3; st++ {
			h := b.AddCoflow(
				coflow.FlowSpec{Src: 0, Dst: 1, Size: int64(1000 * (i + 1))},
				coflow.FlowSpec{Src: 2, Dst: 3, Size: 1}, // 1-byte flow edge case
			)
			if prev >= 0 {
				b.Depends(h, prev)
			}
			prev = h
		}
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// TestChaoticSchedulerCannotBreakEngine: out-of-range queues are clamped;
// every job still drains under both data planes.
func TestChaoticSchedulerCannotBreakEngine(t *testing.T) {
	tp := bigSwitch(t, 8, 1000)
	for _, mode := range []netmod.Mode{netmod.ModeSPQ, netmod.ModeWRR} {
		res := run(t, Config{Topology: tp, Mode: mode}, &chaoticSched{}, hostileWorkload(t))
		if len(res.Jobs) != 12 {
			t.Fatalf("mode %v: drained %d/12 jobs under chaotic scheduler", mode, len(res.Jobs))
		}
		for _, jr := range res.Jobs {
			if jr.JCT <= 0 || math.IsNaN(jr.JCT) || math.IsInf(jr.JCT, 0) {
				t.Fatalf("mode %v: job %d JCT = %v", mode, jr.JobID, jr.JCT)
			}
		}
	}
}

// TestLazySchedulerDefaultsToFairSharing: a scheduler that never sets
// queues leaves everything at queue 0 = per-flow fair sharing; still
// drains and matches the fair scheduler exactly.
func TestLazySchedulerDefaultsToFairSharing(t *testing.T) {
	tp := bigSwitch(t, 8, 1000)
	rLazy := run(t, Config{Topology: tp}, lazySched{}, hostileWorkload(t))
	rFair := run(t, Config{Topology: tp}, &fairSched{}, hostileWorkload(t))
	if len(rLazy.Jobs) != len(rFair.Jobs) {
		t.Fatal("job counts differ")
	}
	for i := range rLazy.Jobs {
		if math.Abs(rLazy.Jobs[i].JCT-rFair.Jobs[i].JCT) > 1e-9 {
			t.Fatalf("job %d: lazy %v vs fair %v", rLazy.Jobs[i].JobID, rLazy.Jobs[i].JCT, rFair.Jobs[i].JCT)
		}
	}
}

// TestOneByteFlows: minimal flow sizes complete without numerical trouble.
func TestOneByteFlows(t *testing.T) {
	tp := bigSwitch(t, 4, 1e9)
	var cid coflow.CoflowID
	var fid coflow.FlowID
	b := coflow.NewBuilder(1, 0, &cid, &fid)
	c1 := b.AddCoflow(coflow.FlowSpec{Src: 0, Dst: 1, Size: 1})
	c2 := b.AddCoflow(coflow.FlowSpec{Src: 1, Dst: 2, Size: 1})
	b.Depends(c2, c1)
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Topology: tp}, &fairSched{}, []*coflow.Job{j})
	if len(res.Jobs) != 1 || res.Jobs[0].JCT <= 0 {
		t.Fatalf("1-byte chain failed: %+v", res.Jobs)
	}
}

// TestSimultaneousArrivalStorm: many jobs at the exact same instant on the
// same links; FIFO event ordering keeps the run deterministic and complete.
func TestSimultaneousArrivalStorm(t *testing.T) {
	tp := bigSwitch(t, 4, 1000)
	var cid coflow.CoflowID
	var fid coflow.FlowID
	var jobs []*coflow.Job
	for i := 0; i < 50; i++ {
		b := coflow.NewBuilder(coflow.JobID(i), 1.0, &cid, &fid) // identical arrival
		b.AddCoflow(coflow.FlowSpec{Src: 0, Dst: 1, Size: 100})
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	res := run(t, Config{Topology: tp}, &fairSched{}, jobs)
	if len(res.Jobs) != 50 {
		t.Fatalf("drained %d/50", len(res.Jobs))
	}
	// All 50 × 100 B drain a 1000 B/s link: last completion at t=6.
	if math.Abs(res.EndTime-6) > 1e-6 {
		t.Fatalf("EndTime = %v, want 6", res.EndTime)
	}
}

// TestDuplicateIDsRejected: the workload validation catches ID collisions
// instead of letting schedulers silently corrupt their state.
func TestDuplicateIDsRejected(t *testing.T) {
	tp := bigSwitch(t, 4, 1000)
	mk := func(jobID coflow.JobID) *coflow.Job {
		b := coflow.NewBuilder(jobID, 0, nil, nil) // fresh counters: IDs collide
		b.AddCoflow(coflow.FlowSpec{Src: 0, Dst: 1, Size: 10})
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	if _, err := New(Config{Topology: tp}, &fairSched{}, []*coflow.Job{mk(1), mk(2)}); err == nil {
		t.Fatal("duplicate coflow IDs should be rejected")
	}
	j := mk(1)
	if _, err := New(Config{Topology: tp}, &fairSched{}, []*coflow.Job{j, j}); err == nil {
		t.Fatal("duplicate job should be rejected")
	}
}

// TestHostileConfigRejected: invalid configurations fail fast.
func TestHostileConfigRejected(t *testing.T) {
	tp := bigSwitch(t, 4, 1000)
	if _, err := New(Config{Topology: tp, MaxFlowRate: -1}, &fairSched{}, nil); err == nil {
		t.Fatal("negative MaxFlowRate should fail")
	}
	if _, err := New(Config{Topology: tp, Dependency: DependencyMode(42)}, &fairSched{}, nil); err == nil {
		t.Fatal("unknown dependency mode should fail")
	}
	if _, err := New(Config{Topology: tp, Utilization: 2}, &fairSched{}, nil); err == nil {
		t.Fatal("utilization >= 1 should fail")
	}
}
