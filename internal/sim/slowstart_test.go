package sim

import (
	"math"
	"testing"

	"gurita/internal/coflow"
)

func TestSlowStartConfigValidation(t *testing.T) {
	tp := bigSwitch(t, 2, 1.25e9)
	if _, err := New(Config{Topology: tp, RTT: -1}, &fairSched{}, nil); err == nil {
		t.Fatal("negative RTT should fail")
	}
	if _, err := New(Config{Topology: tp, InitWindow: -1}, &fairSched{}, nil); err == nil {
		t.Fatal("negative InitWindow should fail")
	}
}

// TestSlowStartDelaysMice: a mouse flow's completion is dominated by the
// window ramp, not the line rate.
func TestSlowStartDelaysMice(t *testing.T) {
	tp := bigSwitch(t, 2, 1.25e9) // 10G
	mk := func() []*coflow.Job {
		return []*coflow.Job{singleFlowJob(t, 1, 0, 0, 1, 50e3)} // 50 kB
	}
	fast := run(t, Config{Topology: tp}, &fairSched{}, mk())
	// Line rate: 50e3/1.25e9 = 40 µs.
	if got := fast.Jobs[0].JCT; math.Abs(got-4e-5) > 1e-9 {
		t.Fatalf("steady-state JCT = %v, want 40 µs", got)
	}
	slow := run(t, Config{Topology: tp, TCPSlowStart: true}, &fairSched{}, mk())
	got := slow.Jobs[0].JCT
	if got <= 4e-5 {
		t.Fatalf("slow-start JCT = %v, want > line-rate 40 µs", got)
	}
	// The ramp reaches line rate within ~14 RTTs; a 50 kB flow must finish
	// within a handful of RTTs (100 µs each).
	if got > 2e-3 {
		t.Fatalf("slow-start JCT = %v, implausibly slow", got)
	}
}

// TestSlowStartBarelyAffectsElephants: the ramp is a fixed ~1 ms prologue,
// negligible against an 800 ms transfer.
func TestSlowStartBarelyAffectsElephants(t *testing.T) {
	tp := bigSwitch(t, 2, 1.25e9)
	mk := func() []*coflow.Job {
		return []*coflow.Job{singleFlowJob(t, 1, 0, 0, 1, 1e9)} // 1 GB
	}
	fast := run(t, Config{Topology: tp}, &fairSched{}, mk())
	slow := run(t, Config{Topology: tp, TCPSlowStart: true}, &fairSched{}, mk())
	ratio := slow.Jobs[0].JCT / fast.Jobs[0].JCT
	if ratio < 1 {
		t.Fatalf("slow start made the elephant faster?! ratio %v", ratio)
	}
	if ratio > 1.01 {
		t.Fatalf("slow start cost the elephant %.2f%%, want < 1%%", 100*(ratio-1))
	}
}

// TestSlowStartDefaultOff: with the flag off, configs with RTT/InitWindow
// set behave exactly like before.
func TestSlowStartDefaultOff(t *testing.T) {
	tp := bigSwitch(t, 2, 1.25e9)
	mk := func() []*coflow.Job {
		return []*coflow.Job{singleFlowJob(t, 1, 0, 0, 1, 50e3)}
	}
	a := run(t, Config{Topology: tp}, &fairSched{}, mk())
	b := run(t, Config{Topology: tp, RTT: 1e-3, InitWindow: 1}, &fairSched{}, mk())
	if a.Jobs[0].JCT != b.Jobs[0].JCT {
		t.Fatal("RTT/InitWindow must be inert while TCPSlowStart is off")
	}
}

// TestSlowStartRampMonotone: a flow's observed rate never decreases while
// it is alone on its path during the ramp.
func TestSlowStartRampMonotone(t *testing.T) {
	tp := bigSwitch(t, 2, 1.25e9)
	probeRates := []float64{}
	cfg := Config{
		Topology:     tp,
		TCPSlowStart: true,
		Tick:         100e-6, // sample every RTT
		Probe: func(_ float64, active []*FlowState) {
			if len(active) == 1 {
				probeRates = append(probeRates, active[0].Rate())
			}
		},
	}
	run(t, cfg, &fairSched{}, []*coflow.Job{singleFlowJob(t, 1, 0, 0, 1, 2e6)})
	if len(probeRates) < 3 {
		t.Fatalf("too few samples: %v", probeRates)
	}
	for i := 1; i < len(probeRates); i++ {
		if probeRates[i] < probeRates[i-1]-1e-6 {
			t.Fatalf("ramp not monotone: %v", probeRates)
		}
	}
	if probeRates[0] >= 1.25e9 {
		t.Fatal("first sample already at line rate; ramp not applied")
	}
}
