package sim

import (
	"math"
	"math/rand"
	"testing"

	"gurita/internal/coflow"
	"gurita/internal/topo"
)

// pipelineJob builds a 2-stage job where stage 2's flows are fed one-to-one
// by stage 1's flows: child flows deliver to servers 2 and 3, and the
// parent's flows leave exactly those servers. Under task-level release the
// parent flow out of server 2 can start as soon as the (fast) child flow
// into server 2 finishes, while the slow child into server 3 is still
// running.
func pipelineJob(t *testing.T) *coflow.Job {
	t.Helper()
	b := coflow.NewBuilder(1, 0, nil, nil)
	child := b.AddCoflow(
		coflow.FlowSpec{Src: 0, Dst: 2, Size: 100},  // fast: 1 s at 100 B/s
		coflow.FlowSpec{Src: 1, Dst: 3, Size: 1000}, // slow: 10 s
	)
	parent := b.AddCoflow(
		coflow.FlowSpec{Src: 2, Dst: 4, Size: 500},
		coflow.FlowSpec{Src: 3, Dst: 5, Size: 500},
	)
	b.Depends(parent, child)
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestTaskDependencyPipelines(t *testing.T) {
	tp := bigSwitch(t, 8, 100)

	// Coflow-level release: parent waits for the slow child flow.
	// JCT = 10 (slow child) + 5 (parent) = 15.
	resCoflow := run(t, Config{Topology: tp, Dependency: DepCoflow}, &fairSched{}, []*coflow.Job{pipelineJob(t)})
	if got := resCoflow.Jobs[0].JCT; math.Abs(got-15) > 1e-6 {
		t.Fatalf("coflow-level JCT = %v, want 15", got)
	}

	// Task-level release: parent flow from server 2 starts at t=1 (its
	// feeder finished), overlaps the slow child, and finishes at t=6. The
	// other parent flow runs 10..15. JCT stays 15 here (the slow chain
	// dominates), but the coflow's first flow starts at t=1.
	resTask := run(t, Config{Topology: tp, Dependency: DepTask}, &fairSched{}, []*coflow.Job{pipelineJob(t)})
	var parentRes CoflowResult
	for _, cr := range resTask.Coflows {
		if cr.Stage == 2 {
			parentRes = cr
		}
	}
	if math.Abs(parentRes.Started-1) > 1e-6 {
		t.Fatalf("task-level parent started at %v, want 1 (pipelined)", parentRes.Started)
	}
	if got := resTask.Jobs[0].JCT; math.Abs(got-15) > 1e-6 {
		t.Fatalf("task-level JCT = %v, want 15", got)
	}
}

// TestTaskDependencyShortensJCT: when the *slow* side of stage 2 is the one
// that can pipeline, task-level release shortens the JCT outright.
func TestTaskDependencyShortensJCT(t *testing.T) {
	tp := bigSwitch(t, 8, 100)
	mk := func() *coflow.Job {
		b := coflow.NewBuilder(1, 0, nil, nil)
		child := b.AddCoflow(
			coflow.FlowSpec{Src: 0, Dst: 2, Size: 100},  // finishes t=1
			coflow.FlowSpec{Src: 1, Dst: 3, Size: 1000}, // finishes t=10
		)
		parent := b.AddCoflow(
			coflow.FlowSpec{Src: 2, Dst: 4, Size: 2000}, // heavy, fed by fast child
			coflow.FlowSpec{Src: 3, Dst: 5, Size: 100},  // light, fed by slow child
		)
		b.Depends(parent, child)
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	resCoflow := run(t, Config{Topology: tp, Dependency: DepCoflow}, &fairSched{}, []*coflow.Job{mk()})
	resTask := run(t, Config{Topology: tp, Dependency: DepTask}, &fairSched{}, []*coflow.Job{mk()})
	// Coflow mode: 10 + 20 = 30. Task mode: heavy parent flow runs 1..21;
	// light runs 10..11; JCT 21.
	if got := resCoflow.Jobs[0].JCT; math.Abs(got-30) > 1e-6 {
		t.Fatalf("coflow-level JCT = %v, want 30", got)
	}
	if got := resTask.Jobs[0].JCT; math.Abs(got-21) > 1e-6 {
		t.Fatalf("task-level JCT = %v, want 21 (pipelined)", got)
	}
}

// TestTaskDependencyNoFeederFallsBack: a parent flow whose source receives
// nothing from the children keeps coflow-level semantics.
func TestTaskDependencyNoFeederFallsBack(t *testing.T) {
	tp := bigSwitch(t, 8, 100)
	b := coflow.NewBuilder(1, 0, nil, nil)
	child := b.AddCoflow(coflow.FlowSpec{Src: 0, Dst: 2, Size: 500})
	// Parent flow leaves server 6, which no child delivers to.
	parent := b.AddCoflow(coflow.FlowSpec{Src: 6, Dst: 7, Size: 100})
	b.Depends(parent, child)
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Topology: tp, Dependency: DepTask}, &fairSched{}, []*coflow.Job{j})
	var parentRes CoflowResult
	for _, cr := range res.Coflows {
		if cr.Stage == 2 {
			parentRes = cr
		}
	}
	if math.Abs(parentRes.Started-5) > 1e-6 {
		t.Fatalf("no-feeder parent started at %v, want 5 (after child coflow)", parentRes.Started)
	}
}

// TestTaskDependencyNeverSlower: task-level release can only start flows
// earlier, so per-job JCT is never worse than coflow-level release on the
// same workload (under the same neutral scheduler).
func TestTaskDependencyNeverSlower(t *testing.T) {
	tp := bigSwitch(t, 24, 1e5)
	mk := func(seed int64) []*coflow.Job {
		rng := rand.New(rand.NewSource(seed))
		var cid coflow.CoflowID
		var fid coflow.FlowID
		var jobs []*coflow.Job
		for i := 0; i < 20; i++ {
			b := coflow.NewBuilder(coflow.JobID(i), rng.Float64(), &cid, &fid)
			prev := -1
			for st := 0; st < 1+rng.Intn(4); st++ {
				var specs []coflow.FlowSpec
				for f := 0; f < 1+rng.Intn(3); f++ {
					specs = append(specs, coflow.FlowSpec{
						Src:  topo.ServerID(rng.Intn(24)),
						Dst:  topo.ServerID(rng.Intn(24)),
						Size: int64(1e3 + rng.Intn(100000)),
					})
				}
				h := b.AddCoflow(specs...)
				if prev >= 0 {
					b.Depends(h, prev)
				}
				prev = h
			}
			j, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		return jobs
	}
	for seed := int64(0); seed < 5; seed++ {
		rc := run(t, Config{Topology: tp, Dependency: DepCoflow}, &fairSched{}, mk(seed))
		rt := run(t, Config{Topology: tp, Dependency: DepTask}, &fairSched{}, mk(seed))
		if len(rc.Jobs) != len(rt.Jobs) {
			t.Fatal("job counts differ")
		}
		avgC := rc.AvgJCT()
		avgT := rt.AvgJCT()
		// Pipelining changes contention patterns, so individual jobs can
		// shift either way; the average should not regress materially.
		if avgT > avgC*1.05 {
			t.Fatalf("seed %d: task-level avg JCT %v sharply worse than coflow-level %v", seed, avgT, avgC)
		}
	}
}

func TestDependencyModeString(t *testing.T) {
	if DepCoflow.String() != "coflow" || DepTask.String() != "task" || DependencyMode(9).String() == "" {
		t.Fatal("dependency mode stringers wrong")
	}
}

// TestJCTLowerBound is the conservation sanity check used across the whole
// suite: no scheduler can beat the job's critical path at line rate, since
// a stage cannot start before its children finish and no flow exceeds the
// link capacity.
func TestJCTLowerBound(t *testing.T) {
	tp := bigSwitch(t, 16, 1e5)
	rng := rand.New(rand.NewSource(33))
	var cid coflow.CoflowID
	var fid coflow.FlowID
	var jobs []*coflow.Job
	for i := 0; i < 15; i++ {
		b := coflow.NewBuilder(coflow.JobID(i), rng.Float64(), &cid, &fid)
		prev := -1
		for st := 0; st < 1+rng.Intn(4); st++ {
			h := b.AddCoflow(coflow.FlowSpec{
				Src:  topo.ServerID(rng.Intn(16)),
				Dst:  topo.ServerID(rng.Intn(16)),
				Size: int64(1e4 + rng.Intn(1000000)),
			})
			if prev >= 0 {
				b.Depends(h, prev)
			}
			prev = h
		}
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	res := run(t, Config{Topology: tp}, &fairSched{}, jobs)
	for _, jr := range res.Jobs {
		var job *coflow.Job
		for _, j := range jobs {
			if j.ID == jr.JobID {
				job = j
			}
		}
		bound := coflow.CriticalPathLength(job, coflow.CCTWeight(1e5))
		if jr.JCT < bound-1e-6 {
			t.Fatalf("job %d JCT %v beats the line-rate critical path bound %v", jr.JobID, jr.JCT, bound)
		}
	}
}
