// Fault injection: replaying a faults.Schedule inside the engine.
//
// Data-plane faults flow into the allocator through the delta capacity API
// (netmod.SetLinkCapacity): a failed link's capacity drops to zero, a
// degraded NIC's host links shrink by the event factor. Flows whose path
// crosses a failed link are rerouted onto the surviving equal-cost paths
// (topo.SurvivingPath, deterministic probe order seeded by the flow's ECMP
// hash); when every candidate path is broken the flow stalls — it leaves
// the allocator at rate zero but stays an open connection — and retries
// with exponential backoff, plus an immediate retry whenever a repair event
// lands. A stalled flow whose fabric can never be repaired (no fault events
// left in the schedule) aborts the run with a descriptive error instead of
// spinning.
//
// Control-plane faults are forwarded to the scheduler when it implements
// ControlFaultObserver; schedulers without a control plane ignore them.
//
// Determinism: fault events are scheduled at construction time, before job
// arrivals, so at equal timestamps the event queue's FIFO tie-break fires
// faults first — before arrivals and before any completion or tick event
// (those are scheduled during the run and always carry higher sequence
// numbers). Reroute and stall sweeps walk the active set in slice order.
// Replaying the same schedule therefore reproduces the same trajectory
// byte for byte.

package sim

import (
	"fmt"
	"math"

	"gurita/internal/eventq"
	"gurita/internal/faults"
	"gurita/internal/obs"
	"gurita/internal/topo"
)

// ControlFaultObserver is implemented by schedulers whose control plane can
// degrade: the engine forwards CtrlDropRounds / CtrlDelay / CtrlStaleHost
// events to it. Schedulers that do not implement it (or have no control
// plane, like PFS) silently ignore control-plane faults.
type ControlFaultObserver interface {
	OnControlFault(now float64, ev faults.Event)
}

// Stalled-flow retry backoff: first retry after retryBackoff0 seconds,
// doubling per failed attempt, capped at retryBackoffMax. Repair events
// additionally trigger an immediate readmission sweep, so the timers are a
// bounded-cost backstop (mirroring TCP's retransmission backoff), not the
// primary recovery path.
const (
	retryBackoff0   = 0.05
	retryBackoffMax = 5.0
)

// stalledFlow tracks one flow waiting out a partition.
type stalledFlow struct {
	fs       *FlowState
	attempts int
	retry    eventq.Handle
	idx      int // position in Simulator.stalled
}

// scheduleFaults validates and enqueues the configured fault schedule. It
// must run before arrival events are scheduled so faults win same-instant
// ties (see the package comment on determinism).
func (s *Simulator) scheduleFaults() error {
	sched := s.cfg.Faults
	if sched.Empty() {
		return nil
	}
	if err := sched.Validate(s.cfg.Topology); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	s.faultsOn = true
	s.downRef = make([]int32, s.cfg.Topology.NumLinks())
	if cfo, ok := s.sched.(ControlFaultObserver); ok {
		s.ctrlObs = cfo
	}
	s.pendingFaults = len(sched.Events)
	for _, ev := range sched.Events {
		ev := ev
		s.queue.Schedule(ev.Time, func() { s.handleFault(ev) })
	}
	return nil
}

// handleFault applies one fault event. Reroute/readmit sweeps are deferred
// to afterFaults so that all same-instant events settle the down set first
// (a switch failure lands many link-down deltas at once).
func (s *Simulator) handleFault(ev faults.Event) {
	s.pendingFaults--
	s.faultFired = true
	if s.cfg.Obs != nil {
		s.cfg.Obs.Event(obs.Event{
			T: s.now, Kind: obs.KindFault,
			Arg: int64(ev.Kind), Val: ev.Factor,
		})
	}
	s.reg.Add("faults_fired", 1)
	switch ev.Kind {
	case faults.LinkDown:
		s.linkDownDelta(ev.Link, +1)
	case faults.LinkUp:
		s.linkDownDelta(ev.Link, -1)
	case faults.SwitchDown, faults.SwitchUp:
		d := +1
		if ev.Kind == faults.SwitchUp {
			d = -1
		}
		s.switchLinksBuf, _ = s.cfg.Topology.AppendSwitchLinks(s.switchLinksBuf[:0], ev.Switch)
		for _, l := range s.switchLinksBuf {
			s.linkDownDelta(l, d)
		}
	case faults.NICDegrade:
		s.setNICFactor(ev.Host, ev.Factor)
	case faults.NICRestore:
		s.setNICFactor(ev.Host, 1)
	case faults.CtrlDropRounds, faults.CtrlDelay, faults.CtrlStaleHost:
		if s.ctrlObs != nil {
			s.ctrlObs.OnControlFault(s.now, ev)
		}
	}
}

// linkDownDelta adjusts a link's failure reference count (a link can be
// down both directly and through its switch) and refreshes its capacity on
// the up/down edge.
func (s *Simulator) linkDownDelta(l topo.LinkID, d int) {
	was := s.downRef[l] > 0
	s.downRef[l] += int32(d)
	if s.downRef[l] < 0 {
		// Repair without a matching failure (hand-written schedule); treat
		// the link as healthy rather than corrupting the count.
		s.downRef[l] = 0
	}
	is := s.downRef[l] > 0
	if was == is {
		return
	}
	if is {
		s.downLinks++
		s.needReroute = true
	} else {
		s.downLinks--
		s.needReadmit = true
	}
	s.refreshLinkCapacity(l)
}

// setNICFactor scales one host's uplink and downlink capacity.
func (s *Simulator) setNICFactor(h topo.ServerID, factor float64) {
	if s.degradeF == nil {
		s.degradeF = make([]float64, s.cfg.Topology.NumLinks())
		for i := range s.degradeF {
			s.degradeF[i] = 1
		}
	}
	up, dn := s.cfg.Topology.ServerUplink(h), s.cfg.Topology.ServerDownlink(h)
	s.degradeF[up] = factor
	s.degradeF[dn] = factor
	s.refreshLinkCapacity(up)
	s.refreshLinkCapacity(dn)
}

// effCapacity returns the link's capacity with faults applied.
func (s *Simulator) effCapacity(l topo.LinkID) float64 {
	if s.downRef != nil && s.downRef[l] > 0 {
		return 0
	}
	c := s.cfg.Topology.LinkCapacity(l)
	if s.degradeF != nil {
		c *= s.degradeF[l]
	}
	return c
}

// refreshLinkCapacity pushes a link's effective capacity into the
// allocator (and the batch-reference allocator, which must solve against
// the same fabric for VerifyIncremental to stay meaningful).
func (s *Simulator) refreshLinkCapacity(l topo.LinkID) {
	eff := s.effCapacity(l)
	//lint:ignore floatcmp override bookkeeping: with no degradation in force effCapacity returns the nominal capacity bit-for-bit, and only that exact case may clear the override
	if eff == s.cfg.Topology.LinkCapacity(l) {
		s.alloc.ClearLinkCapacity(l)
		if s.verify != nil {
			s.verify.ClearLinkCapacity(l)
		}
		return
	}
	s.alloc.SetLinkCapacity(l, eff)
	if s.verify != nil {
		s.verify.SetLinkCapacity(l, eff)
	}
}

// afterFaults runs once per instant after every same-time event fired:
// reroutes or stalls flows whose path broke, then readmits stalled flows
// that a repair made routable again.
func (s *Simulator) afterFaults() {
	if s.needReroute {
		s.needReroute = false
		s.sweepBrokenPaths()
	}
	if s.needReadmit {
		s.needReadmit = false
		s.sweepStalled()
	}
}

func (s *Simulator) isLinkDown(l topo.LinkID) bool { return s.downRef[l] > 0 }

func (s *Simulator) pathBroken(path []topo.LinkID) bool {
	for _, l := range path {
		if s.downRef[l] > 0 {
			return true
		}
	}
	return false
}

// survivingPathFor resolves the flow's route over the surviving fabric.
func (s *Simulator) survivingPathFor(fs *FlowState) ([]topo.LinkID, bool) {
	fl := fs.Flow
	return s.cfg.Topology.SurvivingPath(nil, fl.Src, fl.Dst,
		topo.ECMPHash(fl.Src, fl.Dst, uint64(fl.ID)), s.isLinkDown)
}

// sweepBrokenPaths reroutes every active flow crossing a failed link onto a
// surviving equal-cost path, or stalls it when src and dst are partitioned.
// Flows admitted this very instant already routed around the down set in
// startFlow (faults fire before arrivals at equal timestamps), so every
// broken-path flow found here is registered with the allocator.
func (s *Simulator) sweepBrokenPaths() {
	for i := 0; i < len(s.active); i++ {
		fs := s.active[i]
		if !s.pathBroken(fs.Demand.Path) {
			continue
		}
		if fs.Remaining <= epsBytes {
			// Fully drained at this very instant (completion and fault share
			// the timestamp): the completion scan in reallocate retires it;
			// stalling a finished transfer would be artificial.
			continue
		}
		s.alloc.Unregister(&fs.Demand)
		if path, ok := s.survivingPathFor(fs); ok {
			// Rerouted flows keep their assigned queue; re-registering on
			// the new path marks the tier dirty for the next Reallocate.
			fs.Demand.Path = path
			s.alloc.Register(&fs.Demand)
			continue
		}
		s.stallFlow(fs)
		i--
	}
}

// stallFlow parks an active (or just-started) flow whose destination is
// unreachable. The flow stays an open connection — the receiver still sees
// it, so observed widths do not change — but leaves the allocator and
// transmits nothing until readmitted.
func (s *Simulator) stallFlow(fs *FlowState) {
	if fs.activeIdx >= 0 {
		i := fs.activeIdx
		last := len(s.active) - 1
		s.active[i] = s.active[last]
		s.active[i].activeIdx = i
		s.active = s.active[:last]
		fs.activeIdx = -1
	}
	fs.Demand.Rate = 0
	if s.cfg.Obs != nil {
		s.cfg.Obs.Event(obs.Event{
			T: s.now, Kind: obs.KindStall,
			Job: int64(fs.Coflow.Job.Job.ID), Coflow: int64(fs.Coflow.Coflow.ID),
			Flow: int64(fs.Flow.ID),
		})
	}
	s.reg.Add("flow_stalls", 1)
	var st *stalledFlow
	if n := len(s.stalledPool); n > 0 {
		st = s.stalledPool[n-1]
		s.stalledPool = s.stalledPool[:n-1]
		*st = stalledFlow{}
	} else {
		st = &stalledFlow{}
	}
	st.fs, st.idx = fs, len(s.stalled)
	s.stalled = append(s.stalled, st)
	s.scheduleRetry(st)
}

// sweepStalled readmits every stalled flow the current fabric can route, in
// stall order (deterministic).
func (s *Simulator) sweepStalled() {
	for i := 0; i < len(s.stalled); i++ {
		st := s.stalled[i]
		path, ok := s.survivingPathFor(st.fs)
		if !ok {
			continue
		}
		s.readmit(st, path)
		i--
	}
}

// readmit returns a stalled flow to the active set. It rides the normal
// admission path — appended to added, so the scheduler assigns its queue at
// the next AssignQueues exactly like a new connection (a reconnect after a
// partition is a fresh connection from the fabric's point of view).
func (s *Simulator) readmit(st *stalledFlow, path []topo.LinkID) {
	if !st.retry.Zero() {
		s.queue.Cancel(st.retry)
		st.retry = eventq.Handle{}
	}
	last := len(s.stalled) - 1
	moved := s.stalled[last]
	s.stalled[st.idx] = moved
	moved.idx = st.idx
	s.stalled[last] = nil
	s.stalled = s.stalled[:last]

	fs := st.fs
	st.fs = nil
	s.stalledPool = append(s.stalledPool, st)
	fs.Demand.Path = path
	fs.activeIdx = len(s.active)
	s.active = append(s.active, fs)
	s.added = append(s.added, fs)
	if s.cfg.Obs != nil {
		s.cfg.Obs.Event(obs.Event{
			T: s.now, Kind: obs.KindReadmit,
			Job: int64(fs.Coflow.Job.Job.ID), Coflow: int64(fs.Coflow.Coflow.ID),
			Flow: int64(fs.Flow.ID),
		})
	}
	s.reg.Add("flow_readmits", 1)
	if len(s.active) > s.result.MaxActiveFlows {
		s.result.MaxActiveFlows = len(s.active)
	}
}

// scheduleRetry arms the stalled flow's next routing attempt.
func (s *Simulator) scheduleRetry(st *stalledFlow) {
	backoff := retryBackoff0 * math.Pow(2, float64(st.attempts))
	if backoff > retryBackoffMax {
		backoff = retryBackoffMax
	}
	st.retry = s.queue.Schedule(s.now+backoff, func() { s.retryStalled(st) })
}

// retryStalled is the backoff timer: try to route; on failure either back
// off again (repairs still pending) or abort the run (the schedule holds no
// more repair events, so the partition is permanent and the job would never
// complete — surfacing that beats spinning to MaxEvents).
func (s *Simulator) retryStalled(st *stalledFlow) {
	st.retry = eventq.Handle{}
	if st.fs.activeIdx >= 0 || st.fs.Done {
		return
	}
	if path, ok := s.survivingPathFor(st.fs); ok {
		s.readmit(st, path)
		return
	}
	st.attempts++
	if s.pendingFaults == 0 {
		fl := st.fs.Flow
		s.faultErr = fmt.Errorf(
			"sim: flow %d (%d->%d) permanently partitioned at t=%v after %d retries: no repair events remain in the fault schedule",
			fl.ID, fl.Src, fl.Dst, s.now, st.attempts)
		return
	}
	s.scheduleRetry(st)
}

// checkInvariants asserts the engine's conservation invariants; the Run
// loop calls it after every fault instant when Config.CheckInvariants is
// set. It is allocation-free after the first call.
func (s *Simulator) checkInvariants() error {
	inflight := s.startedFlows - s.finishedFlows
	if inflight != int64(len(s.active)+len(s.stalled)) {
		return fmt.Errorf(
			"sim: invariant violated at t=%v: %d flows in flight but %d active + %d stalled (flows lost)",
			s.now, inflight, len(s.active), len(s.stalled))
	}
	if s.linkLoad == nil {
		s.linkLoad = make([]float64, s.cfg.Topology.NumLinks())
	}
	var err error
	touched := s.invTouched[:0]
	for _, f := range s.active {
		for _, l := range f.Demand.Path {
			if err == nil && s.downRef != nil && s.downRef[l] > 0 {
				err = fmt.Errorf("sim: invariant violated at t=%v: active flow %d crosses failed link %d",
					s.now, f.Flow.ID, l)
			}
			if s.linkLoad[l] == 0 {
				touched = append(touched, l)
			}
			s.linkLoad[l] += f.Demand.Rate
		}
	}
	for _, l := range touched {
		c := s.effCapacity(l)
		if err == nil && s.linkLoad[l] > c+1e-3+1e-9*c {
			err = fmt.Errorf("sim: invariant violated at t=%v: link %d carries %v B/s over capacity %v B/s",
				s.now, l, s.linkLoad[l], c)
		}
		s.linkLoad[l] = 0
	}
	s.invTouched = touched[:0]
	return err
}
