package sim_test

// End-to-end equivalence of the delta-driven allocation path: every shipping
// policy replays a realistic workload with Config.VerifyIncremental set, so
// the engine re-solves the whole network with the batch allocator after each
// incremental reallocation and fails on the first rate that differs. A pass
// means the incremental path reproduced the batch reference byte-for-byte
// across the entire event trajectory, scheduler dirty-reporting included.
// (The allocator-level property test in internal/netmod covers random churn
// directly against the Register/Unregister/Update API.)

import (
	"testing"

	"gurita/internal/core"
	"gurita/internal/metrics"
	"gurita/internal/netmod"
	"gurita/internal/sched"
	"gurita/internal/sim"
	"gurita/internal/topo"
	"gurita/internal/workload"
)

func TestIncrementalMatchesBatchEndToEnd(t *testing.T) {
	tp, err := topo.NewBigSwitch(24, 1e9)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		mode  netmod.Mode
		build func(t *testing.T) sim.Scheduler
	}{
		{"pfs-spq", netmod.ModeSPQ, func(t *testing.T) sim.Scheduler { return sched.NewPFS() }},
		{"pfs-wrr", netmod.ModeWRR, func(t *testing.T) sim.Scheduler { return sched.NewPFS() }},
		{"baraat", netmod.ModeSPQ, func(t *testing.T) sim.Scheduler { return sched.NewBaraat(sched.BaraatConfig{}) }},
		{"stream", netmod.ModeSPQ, func(t *testing.T) sim.Scheduler {
			s, err := sched.NewStream(sched.StreamConfig{}, 4)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"aalo-live", netmod.ModeSPQ, func(t *testing.T) sim.Scheduler {
			s, err := sched.NewAalo(sched.AaloConfig{}, 4)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"aalo-delayed", netmod.ModeSPQ, func(t *testing.T) sim.Scheduler {
			s, err := sched.NewAalo(sched.AaloConfig{CoordinationInterval: 0.02}, 4)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"mcs", netmod.ModeSPQ, func(t *testing.T) sim.Scheduler {
			s, err := sched.NewMCS(sched.MCSConfig{}, 4)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"varys", netmod.ModeSPQ, func(t *testing.T) sim.Scheduler { return sched.NewVarys() }},
		{"gurita-wrr", netmod.ModeWRR, func(t *testing.T) sim.Scheduler {
			s, err := core.New(core.Config{}, 4)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"gurita+-wrr", netmod.ModeWRR, func(t *testing.T) sim.Scheduler {
			s, err := core.NewPlus(core.Config{}, 4)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}

	for i, c := range cases {
		c := c
		seed := int64(i + 1)
		t.Run(c.name, func(t *testing.T) {
			jobs, err := workload.Generate(workload.Config{
				NumJobs: 25,
				Seed:    seed,
				Servers: tp.NumServers(),
				Arrival: workload.Poisson{Rate: 20},
				// Small-to-mid categories keep event counts (and the O(n)
				// batch cross-check per event) test-sized.
				CategoryWeights: [metrics.NumCategories]float64{0.5, 0.3, 0.2},
				MeanFlowSize:    16e6,
			})
			if err != nil {
				t.Fatal(err)
			}
			s, err := sim.New(sim.Config{
				Topology:          tp,
				Mode:              c.mode,
				Tick:              0.01,
				VerifyIncremental: true,
			}, c.build(t), jobs)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Jobs) != len(jobs) {
				t.Fatalf("completed %d of %d jobs", len(res.Jobs), len(jobs))
			}
		})
	}
}
