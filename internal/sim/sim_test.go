package sim

import (
	"math"
	"math/rand"
	"testing"

	"gurita/internal/coflow"
	"gurita/internal/netmod"
	"gurita/internal/topo"
)

// fairSched places every flow in the top queue: combined with max-min
// allocation this is per-flow fair sharing, an analytically tractable
// baseline for engine tests.
type fairSched struct{ inited bool }

func (s *fairSched) Name() string                  { return "fair" }
func (s *fairSched) Init(Env)                      { s.inited = true }
func (s *fairSched) OnJobArrival(*JobState)        {}
func (s *fairSched) OnCoflowStart(*CoflowState)    {}
func (s *fairSched) OnCoflowComplete(*CoflowState) {}
func (s *fairSched) OnJobComplete(*JobState)       {}
func (s *fairSched) AssignQueues(_ float64, _, added, dirty []*FlowState) []*FlowState {
	for _, f := range added {
		f.SetQueue(0)
	}
	return dirty
}

var _ Scheduler = (*fairSched)(nil)

func bigSwitch(t *testing.T, n int, cap float64) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBigSwitch(n, cap)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// singleFlowJob builds a one-coflow one-flow job. Coflow and flow IDs are
// derived from the job ID so that jobs built separately stay unique within
// one workload (the simulator rejects duplicates).
func singleFlowJob(t *testing.T, id coflow.JobID, arrival float64, src, dst topo.ServerID, size int64) *coflow.Job {
	t.Helper()
	cid := coflow.CoflowID(id * 1000)
	fid := coflow.FlowID(id * 1000)
	b := coflow.NewBuilder(id, arrival, &cid, &fid)
	b.AddCoflow(coflow.FlowSpec{Src: src, Dst: dst, Size: size})
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func run(t *testing.T, cfg Config, sched Scheduler, jobs []*coflow.Job) *Result {
	t.Helper()
	s, err := New(cfg, sched, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleFlowCompletionTime(t *testing.T) {
	tp := bigSwitch(t, 2, 100) // 100 B/s links
	j := singleFlowJob(t, 1, 0, 0, 1, 1000)
	res := run(t, Config{Topology: tp}, &fairSched{}, []*coflow.Job{j})
	if len(res.Jobs) != 1 {
		t.Fatalf("jobs completed = %d, want 1", len(res.Jobs))
	}
	// 1000 B at 100 B/s = 10 s.
	if got := res.Jobs[0].JCT; math.Abs(got-10) > 1e-6 {
		t.Fatalf("JCT = %v, want 10", got)
	}
	if res.Scheduler != "fair" {
		t.Fatalf("Scheduler = %q", res.Scheduler)
	}
	if res.EndTime != res.Jobs[0].Finished {
		t.Fatalf("EndTime = %v, want %v", res.EndTime, res.Jobs[0].Finished)
	}
}

func TestTwoFlowsShareUplink(t *testing.T) {
	tp := bigSwitch(t, 3, 100)
	// Both flows leave server 0: share the 100 B/s uplink, 50 B/s each.
	j1 := singleFlowJob(t, 1, 0, 0, 1, 500)
	j2 := singleFlowJob(t, 2, 0, 0, 2, 500)
	res := run(t, Config{Topology: tp}, &fairSched{}, []*coflow.Job{j1, j2})
	for _, jr := range res.Jobs {
		if math.Abs(jr.JCT-10) > 1e-6 {
			t.Fatalf("job %d JCT = %v, want 10 (fair share)", jr.JobID, jr.JCT)
		}
	}
}

// TestWorkConservingHandoff: when the short flow finishes, the long one
// picks up the full link: 500 B and 1000 B sharing 100 B/s. Short: drains
// 500 at 50 B/s = 10 s. Long: 500 left after 10 s, then 100 B/s → 15 s.
func TestWorkConservingHandoff(t *testing.T) {
	tp := bigSwitch(t, 3, 100)
	j1 := singleFlowJob(t, 1, 0, 0, 1, 500)
	j2 := singleFlowJob(t, 2, 0, 0, 2, 1000)
	res := run(t, Config{Topology: tp}, &fairSched{}, []*coflow.Job{j1, j2})
	if got := res.Jobs[0].JCT; math.Abs(got-10) > 1e-6 {
		t.Fatalf("short JCT = %v, want 10", got)
	}
	if got := res.Jobs[1].JCT; math.Abs(got-15) > 1e-6 {
		t.Fatalf("long JCT = %v, want 15", got)
	}
}

// TestLateArrival: second flow arrives mid-way; rates adjust at arrival.
// Flow A: 1000 B alone for 5 s (500 done), then shares (50 B/s): 10 s more.
func TestLateArrival(t *testing.T) {
	tp := bigSwitch(t, 3, 100)
	j1 := singleFlowJob(t, 1, 0, 0, 1, 1000)
	j2 := singleFlowJob(t, 2, 5, 0, 2, 1000)
	res := run(t, Config{Topology: tp}, &fairSched{}, []*coflow.Job{j1, j2})
	if got := res.Jobs[0].JCT; math.Abs(got-15) > 1e-6 {
		t.Fatalf("A JCT = %v, want 15", got)
	}
	// B: shares 5 s (250 B done at 50 B/s)... both finish computation:
	// at t=15 A done (B has sent 500), B finishes remaining 500 at 100 B/s
	// by t=20, JCT = 15.
	if got := res.Jobs[1].JCT; math.Abs(got-15) > 1e-6 {
		t.Fatalf("B JCT = %v, want 15", got)
	}
}

// TestDAGStageRelease: a 2-stage chain; stage 2 starts only after stage 1
// completes, so JCT is the sum of both transfers.
func TestDAGStageRelease(t *testing.T) {
	tp := bigSwitch(t, 4, 100)
	b := coflow.NewBuilder(1, 0, nil, nil)
	c1 := b.AddCoflow(coflow.FlowSpec{Src: 0, Dst: 1, Size: 500})
	c2 := b.AddCoflow(coflow.FlowSpec{Src: 1, Dst: 2, Size: 300})
	b.Depends(c2, c1)
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Topology: tp}, &fairSched{}, []*coflow.Job{j})
	if got := res.Jobs[0].JCT; math.Abs(got-8) > 1e-6 {
		t.Fatalf("JCT = %v, want 8 (5 + 3 sequential stages)", got)
	}
	if len(res.Coflows) != 2 {
		t.Fatalf("coflow results = %d, want 2", len(res.Coflows))
	}
	var first, second CoflowResult
	for _, cr := range res.Coflows {
		if cr.Stage == 1 {
			first = cr
		} else {
			second = cr
		}
	}
	if second.Started < first.Finished-1e-9 {
		t.Fatalf("stage 2 started at %v before stage 1 finished at %v", second.Started, first.Finished)
	}
}

// TestStageDelay: configured compute delay is inserted between stages.
func TestStageDelay(t *testing.T) {
	tp := bigSwitch(t, 4, 100)
	b := coflow.NewBuilder(1, 0, nil, nil)
	c1 := b.AddCoflow(coflow.FlowSpec{Src: 0, Dst: 1, Size: 500})
	c2 := b.AddCoflow(coflow.FlowSpec{Src: 1, Dst: 2, Size: 300})
	b.Depends(c2, c1)
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Topology: tp, StageDelay: 2}, &fairSched{}, []*coflow.Job{j})
	if got := res.Jobs[0].JCT; math.Abs(got-10) > 1e-6 {
		t.Fatalf("JCT = %v, want 10 (5 + 2 delay + 3)", got)
	}
}

// TestParallelChainsWithinJob: two independent chains inside one job overlap.
func TestParallelChainsWithinJob(t *testing.T) {
	tp := bigSwitch(t, 8, 100)
	b := coflow.NewBuilder(1, 0, nil, nil)
	a1 := b.AddCoflow(coflow.FlowSpec{Src: 0, Dst: 1, Size: 500})
	a2 := b.AddCoflow(coflow.FlowSpec{Src: 1, Dst: 2, Size: 500})
	b.Chain(a1, a2)
	c1 := b.AddCoflow(coflow.FlowSpec{Src: 3, Dst: 4, Size: 500})
	c2 := b.AddCoflow(coflow.FlowSpec{Src: 4, Dst: 5, Size: 500})
	b.Chain(c1, c2)
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Topology: tp}, &fairSched{}, []*coflow.Job{j})
	// Disjoint hosts: chains run in parallel, each 10 s.
	if got := res.Jobs[0].JCT; math.Abs(got-10) > 1e-6 {
		t.Fatalf("JCT = %v, want 10", got)
	}
}

// TestMultiFlowCoflowCCT: a coflow completes when its slowest flow does.
func TestMultiFlowCoflowCCT(t *testing.T) {
	tp := bigSwitch(t, 4, 100)
	b := coflow.NewBuilder(1, 0, nil, nil)
	b.AddCoflow(
		coflow.FlowSpec{Src: 0, Dst: 2, Size: 100},
		coflow.FlowSpec{Src: 1, Dst: 3, Size: 900},
	)
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Topology: tp}, &fairSched{}, []*coflow.Job{j})
	// Disjoint paths: flows at 100 B/s; slowest = 9 s.
	if got := res.Coflows[0].CCT; math.Abs(got-9) > 1e-6 {
		t.Fatalf("CCT = %v, want 9", got)
	}
}

func TestConfigValidation(t *testing.T) {
	tp := bigSwitch(t, 2, 100)
	j := singleFlowJob(t, 1, 0, 0, 1, 10)
	if _, err := New(Config{}, &fairSched{}, nil); err == nil {
		t.Error("missing topology should fail")
	}
	if _, err := New(Config{Topology: tp}, nil, nil); err == nil {
		t.Error("missing scheduler should fail")
	}
	if _, err := New(Config{Topology: tp, Tick: -1}, &fairSched{}, nil); err == nil {
		t.Error("negative tick should fail")
	}
	if _, err := New(Config{Topology: tp, StageDelay: -1}, &fairSched{}, nil); err == nil {
		t.Error("negative stage delay should fail")
	}
	bad := singleFlowJob(t, 2, 0, 0, 1, 10)
	bad.Arrival = -5
	if _, err := New(Config{Topology: tp}, &fairSched{}, []*coflow.Job{bad}); err == nil {
		t.Error("negative arrival should fail")
	}
	s, err := New(Config{Topology: tp}, &fairSched{}, []*coflow.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("Run twice should fail")
	}
}

func TestEmptyWorkload(t *testing.T) {
	tp := bigSwitch(t, 2, 100)
	res := run(t, Config{Topology: tp}, &fairSched{}, nil)
	if len(res.Jobs) != 0 || res.EndTime != 0 {
		t.Fatalf("empty workload: %+v", res)
	}
	if res.AvgJCT() != 0 {
		t.Fatal("AvgJCT of empty result should be 0")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	tp := bigSwitch(t, 2, 100)
	j := singleFlowJob(t, 1, 0, 0, 1, 1e12)
	s, err := New(Config{Topology: tp, MaxEvents: 3, Tick: 0.001}, &fairSched{}, []*coflow.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("MaxEvents guard should trip")
	}
}

// TestDeterminism: identical workloads produce bit-identical results.
func TestDeterminism(t *testing.T) {
	tp := bigSwitch(t, 16, 1e6)
	mk := func() []*coflow.Job {
		rng := rand.New(rand.NewSource(77))
		var cid coflow.CoflowID
		var fid coflow.FlowID
		var jobs []*coflow.Job
		for i := 0; i < 30; i++ {
			b := coflow.NewBuilder(coflow.JobID(i), rng.Float64(), &cid, &fid)
			prev := -1
			stages := 1 + rng.Intn(3)
			for st := 0; st < stages; st++ {
				var specs []coflow.FlowSpec
				for f := 0; f < 1+rng.Intn(4); f++ {
					specs = append(specs, coflow.FlowSpec{
						Src:  topo.ServerID(rng.Intn(16)),
						Dst:  topo.ServerID(rng.Intn(16)),
						Size: int64(1000 + rng.Intn(100000)),
					})
				}
				h := b.AddCoflow(specs...)
				if prev >= 0 {
					b.Depends(h, prev)
				}
				prev = h
			}
			j, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		return jobs
	}
	r1 := run(t, Config{Topology: tp}, &fairSched{}, mk())
	r2 := run(t, Config{Topology: tp}, &fairSched{}, mk())
	if len(r1.Jobs) != len(r2.Jobs) {
		t.Fatal("different job counts")
	}
	for i := range r1.Jobs {
		if r1.Jobs[i] != r2.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, r1.Jobs[i], r2.Jobs[i])
		}
	}
}

// TestAllJobsComplete: every submitted job finishes, regardless of shape.
func TestAllJobsComplete(t *testing.T) {
	tp := bigSwitch(t, 32, 1e6)
	rng := rand.New(rand.NewSource(5))
	var cid coflow.CoflowID
	var fid coflow.FlowID
	var jobs []*coflow.Job
	for i := 0; i < 50; i++ {
		b := coflow.NewBuilder(coflow.JobID(i), rng.Float64()*10, &cid, &fid)
		n := 1 + rng.Intn(6)
		var hs []int
		for c := 0; c < n; c++ {
			hs = append(hs, b.AddCoflow(coflow.FlowSpec{
				Src:  topo.ServerID(rng.Intn(32)),
				Dst:  topo.ServerID(rng.Intn(32)),
				Size: int64(100 + rng.Intn(1000000)),
			}))
			// Random DAG edges to earlier coflows.
			for _, p := range hs[:len(hs)-1] {
				if rng.Intn(3) == 0 {
					b.Depends(hs[len(hs)-1], p)
				}
			}
		}
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	res := run(t, Config{Topology: tp}, &fairSched{}, jobs)
	if len(res.Jobs) != 50 {
		t.Fatalf("completed %d/50 jobs", len(res.Jobs))
	}
	for _, jr := range res.Jobs {
		if jr.JCT <= 0 {
			t.Fatalf("job %d has non-positive JCT %v", jr.JobID, jr.JCT)
		}
	}
}

// TestObservedAccessors: receiver-side observations track actual progress.
func TestObservedAccessors(t *testing.T) {
	tp := bigSwitch(t, 4, 100)
	b := coflow.NewBuilder(1, 0, nil, nil)
	b.AddCoflow(
		coflow.FlowSpec{Src: 0, Dst: 2, Size: 400},
		coflow.FlowSpec{Src: 1, Dst: 3, Size: 200},
	)
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Observe mid-flight via a scheduler hook.
	probe := &probeSched{at: 1.0}
	res := run(t, Config{Topology: tp, Tick: 0.5}, probe, []*coflow.Job{j})
	if len(res.Jobs) != 1 {
		t.Fatal("job did not finish")
	}
	if probe.width != 2 {
		t.Fatalf("ObservedWidth = %d, want 2", probe.width)
	}
	// At t>=1 s both flows sent ~100 B each.
	if probe.largest < 90 || probe.largest > 210 {
		t.Fatalf("ObservedLargest = %v, want ~100", probe.largest)
	}
	if probe.mean <= 0 {
		t.Fatalf("ObservedMeanFlowSize = %v, want > 0", probe.mean)
	}
}

type probeSched struct {
	at      float64
	width   int
	largest float64
	mean    float64
	sampled bool
}

func (s *probeSched) Name() string                  { return "probe" }
func (s *probeSched) Init(Env)                      {}
func (s *probeSched) OnJobArrival(*JobState)        {}
func (s *probeSched) OnCoflowStart(*CoflowState)    {}
func (s *probeSched) OnCoflowComplete(*CoflowState) {}
func (s *probeSched) OnJobComplete(*JobState)       {}
func (s *probeSched) AssignQueues(now float64, fl, added, dirty []*FlowState) []*FlowState {
	for _, f := range added {
		f.SetQueue(0)
	}
	if !s.sampled && now >= s.at && len(fl) > 0 {
		s.sampled = true
		c := fl[0].Coflow
		s.width = c.ObservedWidth()
		s.largest = c.ObservedLargest()
		s.mean = c.ObservedMeanFlowSize()
	}
	return dirty
}

// TestPriorityStarvationUnderSPQ: a scheduler that pins one flow to a low
// queue starves it while a high-priority flow shares its path, and the low
// flow still completes afterwards.
type pinSched struct{ lowJob coflow.JobID }

func (s *pinSched) Name() string                  { return "pin" }
func (s *pinSched) Init(Env)                      {}
func (s *pinSched) OnJobArrival(*JobState)        {}
func (s *pinSched) OnCoflowStart(*CoflowState)    {}
func (s *pinSched) OnCoflowComplete(*CoflowState) {}
func (s *pinSched) OnJobComplete(*JobState)       {}
func (s *pinSched) AssignQueues(_ float64, _, added, dirty []*FlowState) []*FlowState {
	for _, f := range added {
		if f.Coflow.Job.Job.ID == s.lowJob {
			f.SetQueue(3)
		} else {
			f.SetQueue(0)
		}
	}
	return dirty
}

func TestPriorityStarvationUnderSPQ(t *testing.T) {
	tp := bigSwitch(t, 3, 100)
	hi := singleFlowJob(t, 1, 0, 0, 1, 1000)
	lo := singleFlowJob(t, 2, 0, 0, 2, 500)
	res := run(t, Config{Topology: tp, Mode: netmod.ModeSPQ}, &pinSched{lowJob: 2}, []*coflow.Job{hi, lo})
	var hiJCT, loJCT float64
	for _, jr := range res.Jobs {
		if jr.JobID == 1 {
			hiJCT = jr.JCT
		} else {
			loJCT = jr.JCT
		}
	}
	if math.Abs(hiJCT-10) > 1e-6 {
		t.Fatalf("high JCT = %v, want 10 (full rate)", hiJCT)
	}
	if math.Abs(loJCT-15) > 1e-6 {
		t.Fatalf("low JCT = %v, want 15 (starved 10 s, then 5 s)", loJCT)
	}
}

// TestWRRModeAvoidsStarvation: the same scenario under WRR gives the
// low-priority flow a guaranteed trickle, which is visible as the
// high-priority flow finishing later than its SPQ line-rate time (10 s).
// (The low flow still finishes at t=15: the bottleneck stays saturated, so
// total drain time is fixed; what WRR changes is who progresses when.)
func TestWRRModeAvoidsStarvation(t *testing.T) {
	tp := bigSwitch(t, 3, 100)
	hi := singleFlowJob(t, 1, 0, 0, 1, 1000)
	lo := singleFlowJob(t, 2, 0, 0, 2, 500)
	res := run(t, Config{Topology: tp, Mode: netmod.ModeWRR}, &pinSched{lowJob: 2}, []*coflow.Job{hi, lo})
	var hiJCT, loJCT float64
	for _, jr := range res.Jobs {
		if jr.JobID == 1 {
			hiJCT = jr.JCT
		} else {
			loJCT = jr.JCT
		}
	}
	if hiJCT <= 10+1e-6 {
		t.Fatalf("high JCT = %v under WRR, want > 10 (low tier must get a share)", hiJCT)
	}
	if loJCT > 15+1e-6 {
		t.Fatalf("low JCT = %v, want <= 15", loJCT)
	}
}

// TestCompletedStages tracks the paper's s counter.
func TestCompletedStages(t *testing.T) {
	tp := bigSwitch(t, 4, 100)
	b := coflow.NewBuilder(1, 0, nil, nil)
	c1 := b.AddCoflow(coflow.FlowSpec{Src: 0, Dst: 1, Size: 100})
	c2 := b.AddCoflow(coflow.FlowSpec{Src: 1, Dst: 2, Size: 100})
	c3 := b.AddCoflow(coflow.FlowSpec{Src: 2, Dst: 3, Size: 100})
	b.Chain(c1, c2, c3)
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := &stageTracker{}
	run(t, Config{Topology: tp}, tr, []*coflow.Job{j})
	want := []int{0, 1, 2}
	if len(tr.seen) != 3 {
		t.Fatalf("coflow starts = %d, want 3", len(tr.seen))
	}
	for i, got := range tr.seen {
		if got != want[i] {
			t.Fatalf("CompletedStages at start %d = %d, want %d", i, got, want[i])
		}
	}
}

type stageTracker struct{ seen []int }

func (s *stageTracker) Name() string           { return "stages" }
func (s *stageTracker) Init(Env)               {}
func (s *stageTracker) OnJobArrival(*JobState) {}
func (s *stageTracker) OnCoflowStart(c *CoflowState) {
	s.seen = append(s.seen, c.Job.CompletedStages)
}
func (s *stageTracker) OnCoflowComplete(*CoflowState) {}
func (s *stageTracker) OnJobComplete(*JobState)       {}
func (s *stageTracker) AssignQueues(_ float64, _, added, dirty []*FlowState) []*FlowState {
	for _, f := range added {
		f.SetQueue(0)
	}
	return dirty
}
