package lease

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gurita/internal/leakcheck"
)

const testSchema = "lease-test-v1"

func mustOpen(t *testing.T, dir, owner string, mut ...func(*Config)) *Manager {
	t.Helper()
	cfg := Config{Dir: dir, Owner: owner, Schema: testSchema, TTL: 200 * time.Millisecond}
	for _, f := range mut {
		f(&cfg)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

// age rewinds the lease file's mtime so staleness tests don't sleep.
func age(t *testing.T, m *Manager, key string, by time.Duration) {
	t.Helper()
	past := time.Now().Add(-by)
	if err := os.Chtimes(m.leasePath(key), past, past); err != nil {
		t.Fatalf("Chtimes: %v", err)
	}
}

func TestOpenValidates(t *testing.T) {
	dir := t.TempDir()
	cases := []Config{
		{Owner: "w", Schema: "s"},                // no dir
		{Dir: dir, Schema: "s"},                  // no owner
		{Dir: dir, Owner: "w", Schema: ""},       // no schema
		{Dir: dir, Owner: "a/b", Schema: "s"},    // unsafe owner
		{Dir: dir, Owner: "a\x00b", Schema: "s"}, // unsafe owner
	}
	for i, cfg := range cases {
		if _, err := Open(cfg); err == nil {
			t.Errorf("case %d: Open(%+v) succeeded, want error", i, cfg)
		}
	}
	m := mustOpen(t, filepath.Join(dir, "sub"), "w1")
	if m.TTL() != 200*time.Millisecond {
		t.Errorf("TTL = %v", m.TTL())
	}
	if _, err := os.Stat(filepath.Join(dir, "sub")); err != nil {
		t.Errorf("lease dir not created: %v", err)
	}
}

func TestClaimAcquireReleaseCycle(t *testing.T) {
	m := mustOpen(t, t.TempDir(), "w1")
	c, err := m.Claim("k1")
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if c.State != StateAcquired || c.Attempt != 1 || c.Reclaimed {
		t.Fatalf("first claim = %+v, want acquired attempt 1", c)
	}
	// The lease file exists and carries our identity.
	rec, mtime, ok := m.readLease("k1")
	if !ok || mtime.IsZero() {
		t.Fatal("lease file unreadable after acquire")
	}
	if rec.Owner != "w1" || rec.Schema != testSchema || rec.Attempt != 1 {
		t.Fatalf("lease record = %+v", rec)
	}
	c.Release()
	if _, err := os.Stat(m.leasePath("k1")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lease file survives Release: %v", err)
	}
	st := m.Stats()
	if st.Acquired != 1 || st.Released != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Released leases are immediately re-claimable.
	c2, err := m.Claim("k1")
	if err != nil || c2.State != StateAcquired {
		t.Fatalf("re-claim after release: %+v, %v", c2, err)
	}
	c2.Release()
}

func TestClaimBusyWhileFresh(t *testing.T) {
	dir := t.TempDir()
	m1 := mustOpen(t, dir, "w1")
	m2 := mustOpen(t, dir, "w2")
	c1, err := m1.Claim("k")
	if err != nil || c1.State != StateAcquired {
		t.Fatalf("w1 claim: %+v, %v", c1, err)
	}
	c2, err := m2.Claim("k")
	if err != nil {
		t.Fatalf("w2 claim: %v", err)
	}
	if c2.State != StateBusy {
		t.Fatalf("w2 claim state = %v, want busy", c2.State)
	}
	if c2.Holder != "w1" {
		t.Errorf("holder = %q, want w1", c2.Holder)
	}
	if c2.Remaining <= 0 || c2.Remaining > m2.TTL() {
		t.Errorf("remaining = %v, want within (0, TTL]", c2.Remaining)
	}
	c1.Release()
}

func TestReclaimStaleLease(t *testing.T) {
	dir := t.TempDir()
	m1 := mustOpen(t, dir, "w1")
	m2 := mustOpen(t, dir, "w2")
	c1, _ := m1.Claim("k")
	if c1.State != StateAcquired {
		t.Fatal("setup claim failed")
	}
	// w1 "dies": no heartbeat, lease goes stale.
	age(t, m1, "k", m1.TTL()+time.Second)
	c2, err := m2.Claim("k")
	if err != nil {
		t.Fatalf("reclaim: %v", err)
	}
	if c2.State != StateAcquired || !c2.Reclaimed || c2.Attempt != 2 {
		t.Fatalf("reclaim = %+v, want acquired attempt 2 reclaimed", c2)
	}
	rec, _, ok := m2.readLease("k")
	if !ok || rec.Owner != "w2" || rec.Attempt != 2 {
		t.Fatalf("post-reclaim record = %+v", rec)
	}
	if m2.Stats().Reclaimed != 1 {
		t.Errorf("reclaimed stat = %d", m2.Stats().Reclaimed)
	}
	c2.Release()
}

func TestReclaimUnparsableLease(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	if err := os.WriteFile(m.leasePath("k"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	age(t, m, "k", m.TTL()+time.Second)
	c, err := m.Claim("k")
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	// One unknown prior attempt assumed.
	if c.State != StateAcquired || c.Attempt != 2 {
		t.Fatalf("claim = %+v, want acquired attempt 2", c)
	}
	c.Release()
}

func TestForeignSchemaLeaseReclaimableWhenStale(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	old, _ := json.Marshal(record{Schema: "other-schema", Key: "k", Owner: "ghost", Attempt: 4})
	if err := os.WriteFile(m.leasePath("k"), old, 0o644); err != nil {
		t.Fatal(err)
	}
	// Fresh foreign lease: still busy (mtime rules).
	c, err := m.Claim("k")
	if err != nil || c.State != StateBusy {
		t.Fatalf("fresh foreign lease claim = %+v, %v, want busy", c, err)
	}
	age(t, m, "k", m.TTL()+time.Second)
	c, err = m.Claim("k")
	if err != nil {
		t.Fatal(err)
	}
	// Foreign attempts don't count toward our budget: restart at 2.
	if c.State != StateAcquired || c.Attempt != 2 {
		t.Fatalf("stale foreign lease claim = %+v, want acquired attempt 2", c)
	}
	c.Release()
}

func TestPoisonAfterMaxAttempts(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1", func(c *Config) { c.MaxAttempts = 3 })
	// Simulate a crash loop: claim, age, reclaim, never release.
	c, _ := m.Claim("k")
	if c.State != StateAcquired {
		t.Fatal("setup")
	}
	for want := 2; want <= 3; want++ {
		age(t, m, "k", m.TTL()+time.Second)
		c, _ = m.Claim("k")
		if c.State != StateAcquired || c.Attempt != want {
			t.Fatalf("attempt %d claim = %+v", want, c)
		}
	}
	age(t, m, "k", m.TTL()+time.Second)
	c, err := m.Claim("k")
	if err != nil {
		t.Fatal(err)
	}
	if c.State != StatePoisoned {
		t.Fatalf("claim after budget = %+v, want poisoned", c)
	}
	if c.Poison == nil || c.Poison.Attempts != 3 {
		t.Fatalf("poison record = %+v", c.Poison)
	}
	// Lease file is gone; poison marker persists across managers.
	if _, err := os.Stat(m.leasePath("k")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("lease file survives poisoning: %v", err)
	}
	m2 := mustOpen(t, dir, "w2")
	c2, err := m2.Claim("k")
	if err != nil || c2.State != StatePoisoned {
		t.Fatalf("peer claim of poisoned trial = %+v, %v", c2, err)
	}
}

func TestPoisonTrialExplicit(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	c, _ := m.Claim("k")
	if err := c.PoisonTrial("abcd1234", 3, errors.New("deterministic trial failure")); err != nil {
		t.Fatalf("PoisonTrial: %v", err)
	}
	c2, err := m.Claim("k")
	if err != nil || c2.State != StatePoisoned {
		t.Fatalf("claim after explicit poison = %+v, %v", c2, err)
	}
	if c2.Poison.SpecHash != "abcd1234" || c2.Poison.Attempts != 3 {
		t.Fatalf("poison record = %+v", c2.Poison)
	}
	if !strings.Contains(c2.Poison.Err, "deterministic trial failure") {
		t.Errorf("poison err = %q", c2.Poison.Err)
	}
	if _, err := os.Stat(m.leasePath("k")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("lease survives PoisonTrial: %v", err)
	}
}

func TestForeignSchemaPoisonIgnored(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	old, _ := json.Marshal(Poison{Schema: "other", Key: "k", Attempts: 9, Err: "ancient"})
	if err := os.WriteFile(m.poisonPath("k"), old, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := m.Claim("k")
	if err != nil || c.State != StateAcquired {
		t.Fatalf("claim with foreign poison = %+v, %v, want acquired", c, err)
	}
	if _, err := os.Stat(m.poisonPath("k")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("foreign poison marker not cleaned up: %v", err)
	}
	c.Release()
}

func TestHeartbeatKeepsLeaseFresh(t *testing.T) {
	snap := leakcheck.Take()
	defer snap.Check(t) // Release must join the heartbeat goroutine
	dir := t.TempDir()
	m1 := mustOpen(t, dir, "w1", func(c *Config) {
		c.TTL = 300 * time.Millisecond
		c.Heartbeat = 50 * time.Millisecond
	})
	m2 := mustOpen(t, dir, "w2", func(c *Config) { c.TTL = 300 * time.Millisecond })
	c1, _ := m1.Claim("k")
	if c1.State != StateAcquired {
		t.Fatal("setup")
	}
	c1.StartHeartbeat(context.Background())
	// Wait well past the TTL: without heartbeats the lease would be stale.
	time.Sleep(600 * time.Millisecond)
	c2, err := m2.Claim("k")
	if err != nil {
		t.Fatal(err)
	}
	if c2.State != StateBusy {
		t.Fatalf("peer claim during heartbeat = %+v, want busy", c2)
	}
	c1.Release()
	if c1.Lost() {
		t.Error("claim reports lost despite continuous heartbeat")
	}
}

// TestHeartbeatStopsOnContextCancel: cancelling the context handed to
// StartHeartbeat stops the heartbeat goroutine on its own, before any
// Release — a campaign abort must not leave detached heartbeats extending
// leases for trials nobody is executing.
func TestHeartbeatStopsOnContextCancel(t *testing.T) {
	snap := leakcheck.Take()
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1", func(c *Config) { c.Heartbeat = 20 * time.Millisecond })
	c, err := m.Claim("k")
	if err != nil || c.State != StateAcquired {
		t.Fatalf("claim = %+v, %v, want acquired", c, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.StartHeartbeat(ctx)
	cancel()
	select {
	case <-c.hbDone:
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeat goroutine did not exit on context cancel")
	}
	c.Release()
	snap.Check(t)
}

func TestHeartbeatDetectsTakeover(t *testing.T) {
	dir := t.TempDir()
	m1 := mustOpen(t, dir, "w1", func(c *Config) {
		c.TTL = 10 * time.Second // never stale by itself
		c.Heartbeat = 30 * time.Millisecond
	})
	m2 := mustOpen(t, dir, "w2", func(c *Config) { c.TTL = 10 * time.Second })
	c1, _ := m1.Claim("k")
	c1.StartHeartbeat(context.Background())
	// A peer force-reclaims (simulating our process having been SIGSTOPped
	// long enough to be presumed dead, from the peer's point of view).
	age(t, m2, "k", 11*time.Second)
	c2, err := m2.Claim("k")
	if err != nil || c2.State != StateAcquired || !c2.Reclaimed {
		t.Fatalf("forced reclaim = %+v, %v", c2, err)
	}
	// Our next beat must discover the takeover and mark the claim lost
	// without touching the usurper's lease.
	deadline := time.Now().Add(2 * time.Second)
	for !c1.Lost() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !c1.Lost() {
		t.Fatal("heartbeat never detected takeover")
	}
	rec, _, ok := m2.readLease("k")
	if !ok || rec.Owner != "w2" {
		t.Fatalf("usurper lease disturbed: %+v ok=%v", rec, ok)
	}
	// Release on a lost claim must not remove the usurper's lease.
	c1.Release()
	if _, _, ok := m2.readLease("k"); !ok {
		t.Fatal("lost claim's Release removed the usurper's lease")
	}
	if m1.Stats().Lost != 1 {
		t.Errorf("lost stat = %d, want 1", m1.Stats().Lost)
	}
	c2.Release()
}

func TestConcurrentClaimSingleWinner(t *testing.T) {
	dir := t.TempDir()
	const workers = 8
	managers := make([]*Manager, workers)
	for i := range managers {
		managers[i] = mustOpen(t, dir, fmt.Sprintf("w%d", i))
	}
	for round := 0; round < 20; round++ {
		key := fmt.Sprintf("k%d", round)
		var mu sync.Mutex
		var winners []*Claim
		var wg sync.WaitGroup
		for _, m := range managers {
			wg.Add(1)
			go func(m *Manager) {
				defer wg.Done()
				c, err := m.Claim(key)
				if err != nil {
					t.Errorf("Claim: %v", err)
					return
				}
				if c.State == StateAcquired {
					mu.Lock()
					winners = append(winners, c)
					mu.Unlock()
				}
			}(m)
		}
		wg.Wait()
		if len(winners) != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1 (O_EXCL arbitration)", round, len(winners))
		}
		winners[0].Release()
	}
}

func TestSweepRemovesOnlyStaleLeases(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	cs, _ := m.Claim("stale")
	cf, _ := m.Claim("fresh")
	if cs.State != StateAcquired || cf.State != StateAcquired {
		t.Fatal("setup")
	}
	age(t, m, "stale", m.TTL()+time.Second)
	removed := m.Sweep([]string{"stale", "fresh", "absent"})
	if removed != 1 {
		t.Fatalf("Sweep removed %d, want 1", removed)
	}
	if _, err := os.Stat(m.leasePath("stale")); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale lease survived sweep")
	}
	if _, err := os.Stat(m.leasePath("fresh")); err != nil {
		t.Errorf("fresh lease swept: %v", err)
	}
	cf.Release()
}

// countingRegistry is a minimal Counters for asserting emission.
type countingRegistry struct {
	mu sync.Mutex
	m  map[string]int64
}

func (r *countingRegistry) Add(name string, d int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = map[string]int64{}
	}
	r.m[name] += d
}

func TestCountersEmitted(t *testing.T) {
	dir := t.TempDir()
	reg := &countingRegistry{}
	m := mustOpen(t, dir, "w1", func(c *Config) { c.Counters = reg })
	c, _ := m.Claim("a")
	c.Release()
	c, _ = m.Claim("b")
	age(t, m, "b", m.TTL()+time.Second)
	m2 := mustOpen(t, dir, "w2", func(c *Config) { c.Counters = reg })
	c2, _ := m2.Claim("b")
	if !c2.Reclaimed {
		t.Fatal("setup: reclaim failed")
	}
	c2.Release()

	reg.mu.Lock()
	defer reg.mu.Unlock()
	want := map[string]int64{"lease.acquired": 2, "lease.released": 2, "lease.reclaimed": 1}
	for k, v := range want {
		if reg.m[k] != v {
			t.Errorf("counter %s = %d, want %d", k, reg.m[k], v)
		}
	}
}

func TestStatsMatchCounters(t *testing.T) {
	m := mustOpen(t, t.TempDir(), "w1")
	c, _ := m.Claim("x")
	c.Release()
	st := m.Stats()
	if st.Acquired != 1 || st.Released != 1 || st.Reclaimed != 0 || st.Lost != 0 || st.Poisoned != 0 {
		t.Errorf("stats = %+v", st)
	}
}
