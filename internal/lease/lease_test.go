package lease

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gurita/internal/leakcheck"
)

const testSchema = "lease-test-v1"

func mustOpen(t *testing.T, dir, owner string, mut ...func(*Config)) *Manager {
	t.Helper()
	cfg := Config{Dir: dir, Owner: owner, Schema: testSchema, TTL: 200 * time.Millisecond}
	for _, f := range mut {
		f(&cfg)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

// age rewinds the lease file's mtime. Liveness for seq-carrying records no
// longer reads mtimes, so this only drives the fallback path (legacy and
// foreign records) and Sweep.
func age(t *testing.T, m *Manager, key string, by time.Duration) {
	t.Helper()
	past := time.Now().Add(-by)
	if err := os.Chtimes(m.leasePath(key), past, past); err != nil {
		t.Fatalf("Chtimes: %v", err)
	}
}

// warpClock installs a controllable clock on m and returns a function that
// advances it, so observation-based staleness tests move time instead of
// sleeping.
func warpClock(m *Manager) func(time.Duration) {
	var mu sync.Mutex
	offset := time.Duration(0)
	m.clock = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return time.Now().Add(offset)
	}
	return func(d time.Duration) {
		mu.Lock()
		offset += d
		mu.Unlock()
	}
}

// sight performs the first Claim a peer makes against a held lease: the
// sighting that starts its staleness watch. It must come back busy.
func sight(t *testing.T, m *Manager, key string) {
	t.Helper()
	c, err := m.Claim(key)
	if err != nil {
		t.Fatalf("sighting claim: %v", err)
	}
	if c.State != StateBusy {
		t.Fatalf("sighting claim state = %v, want busy", c.State)
	}
}

func TestOpenValidates(t *testing.T) {
	dir := t.TempDir()
	cases := []Config{
		{Owner: "w", Schema: "s"},                // no dir
		{Dir: dir, Schema: "s"},                  // no owner
		{Dir: dir, Owner: "w", Schema: ""},       // no schema
		{Dir: dir, Owner: "a/b", Schema: "s"},    // unsafe owner
		{Dir: dir, Owner: "a\x00b", Schema: "s"}, // unsafe owner
	}
	for i, cfg := range cases {
		if _, err := Open(cfg); err == nil {
			t.Errorf("case %d: Open(%+v) succeeded, want error", i, cfg)
		}
	}
	m := mustOpen(t, filepath.Join(dir, "sub"), "w1")
	if m.TTL() != 200*time.Millisecond {
		t.Errorf("TTL = %v", m.TTL())
	}
	if _, err := os.Stat(filepath.Join(dir, "sub")); err != nil {
		t.Errorf("lease dir not created: %v", err)
	}
}

func TestClaimAcquireReleaseCycle(t *testing.T) {
	m := mustOpen(t, t.TempDir(), "w1")
	c, err := m.Claim("k1")
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if c.State != StateAcquired || c.Attempt != 1 || c.Reclaimed {
		t.Fatalf("first claim = %+v, want acquired attempt 1", c)
	}
	// The lease file exists and carries our identity plus a live sequence.
	rec, mtime, ok := m.readLease("k1")
	if !ok || mtime.IsZero() {
		t.Fatal("lease file unreadable after acquire")
	}
	if rec.Owner != "w1" || rec.Schema != testSchema || rec.Attempt != 1 {
		t.Fatalf("lease record = %+v", rec)
	}
	if rec.Seq == 0 {
		t.Fatalf("acquired lease has no sequence number: %+v", rec)
	}
	c.Release()
	if _, err := os.Stat(m.leasePath("k1")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lease file survives Release: %v", err)
	}
	st := m.Stats()
	if st.Acquired != 1 || st.Released != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Released leases are immediately re-claimable.
	c2, err := m.Claim("k1")
	if err != nil || c2.State != StateAcquired {
		t.Fatalf("re-claim after release: %+v, %v", c2, err)
	}
	c2.Release()
}

func TestClaimBusyWhileFresh(t *testing.T) {
	dir := t.TempDir()
	m1 := mustOpen(t, dir, "w1")
	m2 := mustOpen(t, dir, "w2")
	c1, err := m1.Claim("k")
	if err != nil || c1.State != StateAcquired {
		t.Fatalf("w1 claim: %+v, %v", c1, err)
	}
	c2, err := m2.Claim("k")
	if err != nil {
		t.Fatalf("w2 claim: %v", err)
	}
	if c2.State != StateBusy {
		t.Fatalf("w2 claim state = %v, want busy", c2.State)
	}
	if c2.Holder != "w1" {
		t.Errorf("holder = %q, want w1", c2.Holder)
	}
	if c2.Remaining <= 0 || c2.Remaining > m2.TTL() {
		t.Errorf("remaining = %v, want within (0, TTL]", c2.Remaining)
	}
	c1.Release()
}

func TestReclaimStaleLease(t *testing.T) {
	dir := t.TempDir()
	m1 := mustOpen(t, dir, "w1")
	m2 := mustOpen(t, dir, "w2")
	advance := warpClock(m2)
	c1, _ := m1.Claim("k")
	if c1.State != StateAcquired {
		t.Fatal("setup claim failed")
	}
	// w1 "dies": no renewals. w2 sights the lease, then watches the same
	// (owner, seq) pair sit unchanged past the TTL of its own clock.
	sight(t, m2, "k")
	advance(m2.TTL() + time.Second)
	c2, err := m2.Claim("k")
	if err != nil {
		t.Fatalf("reclaim: %v", err)
	}
	if c2.State != StateAcquired || !c2.Reclaimed || c2.Attempt != 2 {
		t.Fatalf("reclaim = %+v, want acquired attempt 2 reclaimed", c2)
	}
	rec, _, ok := m2.readLease("k")
	if !ok || rec.Owner != "w2" || rec.Attempt != 2 {
		t.Fatalf("post-reclaim record = %+v", rec)
	}
	if m2.Stats().Reclaimed != 1 {
		t.Errorf("reclaimed stat = %d", m2.Stats().Reclaimed)
	}
	c2.Release()
}

func TestReclaimUnparsableLease(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	if err := os.WriteFile(m.leasePath("k"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	age(t, m, "k", m.TTL()+time.Second)
	c, err := m.Claim("k")
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	// One unknown prior attempt assumed.
	if c.State != StateAcquired || c.Attempt != 2 {
		t.Fatalf("claim = %+v, want acquired attempt 2", c)
	}
	c.Release()
}

func TestForeignSchemaLeaseReclaimableWhenStale(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	old, _ := json.Marshal(record{Schema: "other-schema", Key: "k", Owner: "ghost", Attempt: 4})
	if err := os.WriteFile(m.leasePath("k"), old, 0o644); err != nil {
		t.Fatal(err)
	}
	// Fresh foreign lease: still busy (mtime rules).
	c, err := m.Claim("k")
	if err != nil || c.State != StateBusy {
		t.Fatalf("fresh foreign lease claim = %+v, %v, want busy", c, err)
	}
	age(t, m, "k", m.TTL()+time.Second)
	c, err = m.Claim("k")
	if err != nil {
		t.Fatal(err)
	}
	// Foreign attempts don't count toward our budget: restart at 2.
	if c.State != StateAcquired || c.Attempt != 2 {
		t.Fatalf("stale foreign lease claim = %+v, want acquired attempt 2", c)
	}
	c.Release()
}

func TestPoisonAfterMaxAttempts(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1", func(c *Config) { c.MaxAttempts = 3 })
	advance := warpClock(m)
	// Simulate a crash loop: claim, watch the seq go silent, reclaim, never
	// release. Each cycle needs a sighting plus a TTL of observed silence.
	c, _ := m.Claim("k")
	if c.State != StateAcquired {
		t.Fatal("setup")
	}
	for want := 2; want <= 3; want++ {
		sight(t, m, "k")
		advance(m.TTL() + time.Second)
		c, _ = m.Claim("k")
		if c.State != StateAcquired || c.Attempt != want {
			t.Fatalf("attempt %d claim = %+v", want, c)
		}
	}
	sight(t, m, "k")
	advance(m.TTL() + time.Second)
	c, err := m.Claim("k")
	if err != nil {
		t.Fatal(err)
	}
	if c.State != StatePoisoned {
		t.Fatalf("claim after budget = %+v, want poisoned", c)
	}
	if c.Poison == nil || c.Poison.Attempts != 3 {
		t.Fatalf("poison record = %+v", c.Poison)
	}
	// Lease file is gone; poison marker persists across managers.
	if _, err := os.Stat(m.leasePath("k")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("lease file survives poisoning: %v", err)
	}
	m2 := mustOpen(t, dir, "w2")
	c2, err := m2.Claim("k")
	if err != nil || c2.State != StatePoisoned {
		t.Fatalf("peer claim of poisoned trial = %+v, %v", c2, err)
	}
}

func TestPoisonTrialExplicit(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	c, _ := m.Claim("k")
	if err := c.PoisonTrial("abcd1234", 3, errors.New("deterministic trial failure")); err != nil {
		t.Fatalf("PoisonTrial: %v", err)
	}
	c2, err := m.Claim("k")
	if err != nil || c2.State != StatePoisoned {
		t.Fatalf("claim after explicit poison = %+v, %v", c2, err)
	}
	if c2.Poison.SpecHash != "abcd1234" || c2.Poison.Attempts != 3 {
		t.Fatalf("poison record = %+v", c2.Poison)
	}
	if !strings.Contains(c2.Poison.Err, "deterministic trial failure") {
		t.Errorf("poison err = %q", c2.Poison.Err)
	}
	if _, err := os.Stat(m.leasePath("k")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("lease survives PoisonTrial: %v", err)
	}
}

func TestForeignSchemaPoisonIgnored(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	old, _ := json.Marshal(Poison{Schema: "other", Key: "k", Attempts: 9, Err: "ancient"})
	if err := os.WriteFile(m.poisonPath("k"), old, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := m.Claim("k")
	if err != nil || c.State != StateAcquired {
		t.Fatalf("claim with foreign poison = %+v, %v, want acquired", c, err)
	}
	if _, err := os.Stat(m.poisonPath("k")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("foreign poison marker not cleaned up: %v", err)
	}
	c.Release()
}

func TestHeartbeatKeepsLeaseFresh(t *testing.T) {
	snap := leakcheck.Take()
	defer snap.Check(t) // Release must join the heartbeat goroutine
	dir := t.TempDir()
	m1 := mustOpen(t, dir, "w1", func(c *Config) {
		c.TTL = 300 * time.Millisecond
		c.Heartbeat = 50 * time.Millisecond
	})
	m2 := mustOpen(t, dir, "w2", func(c *Config) { c.TTL = 300 * time.Millisecond })
	c1, _ := m1.Claim("k")
	if c1.State != StateAcquired {
		t.Fatal("setup")
	}
	c1.StartHeartbeat(context.Background())
	// Wait well past the TTL: without heartbeats the lease would be stale.
	time.Sleep(600 * time.Millisecond)
	c2, err := m2.Claim("k")
	if err != nil {
		t.Fatal(err)
	}
	if c2.State != StateBusy {
		t.Fatalf("peer claim during heartbeat = %+v, want busy", c2)
	}
	c1.Release()
	if c1.Lost() {
		t.Error("claim reports lost despite continuous heartbeat")
	}
}

// TestHeartbeatStopsOnContextCancel: cancelling the context handed to
// StartHeartbeat stops the heartbeat goroutine on its own, before any
// Release — a campaign abort must not leave detached heartbeats extending
// leases for trials nobody is executing.
func TestHeartbeatStopsOnContextCancel(t *testing.T) {
	snap := leakcheck.Take()
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1", func(c *Config) { c.Heartbeat = 20 * time.Millisecond })
	c, err := m.Claim("k")
	if err != nil || c.State != StateAcquired {
		t.Fatalf("claim = %+v, %v, want acquired", c, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.StartHeartbeat(ctx)
	cancel()
	select {
	case <-c.hbDone:
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeat goroutine did not exit on context cancel")
	}
	c.Release()
	snap.Check(t)
}

func TestHeartbeatDetectsTakeover(t *testing.T) {
	dir := t.TempDir()
	m1 := mustOpen(t, dir, "w1", func(c *Config) { c.TTL = 10 * time.Second })
	m2 := mustOpen(t, dir, "w2", func(c *Config) { c.TTL = 10 * time.Second })
	c1, _ := m1.Claim("k")
	if c1.State != StateAcquired {
		t.Fatal("setup")
	}
	// From the peer's point of view our process is SIGSTOPped: it sights the
	// lease, the (owner, seq) pair never changes, and a TTL later it
	// force-reclaims.
	advance := warpClock(m2)
	sight(t, m2, "k")
	advance(11 * time.Second)
	c2, err := m2.Claim("k")
	if err != nil || c2.State != StateAcquired || !c2.Reclaimed {
		t.Fatalf("forced reclaim = %+v, %v", c2, err)
	}
	// Our next renewal (the heartbeat's beat) must discover the takeover and
	// mark the claim lost without touching the usurper's lease.
	if err := c1.Renew(); !errors.Is(err, ErrLost) {
		t.Fatalf("Renew after takeover = %v, want ErrLost", err)
	}
	if !c1.Lost() {
		t.Fatal("renewal never detected takeover")
	}
	// A second renewal short-circuits without side effects.
	if err := c1.Renew(); !errors.Is(err, ErrLost) {
		t.Fatalf("second Renew = %v, want ErrLost", err)
	}
	rec, _, ok := m2.readLease("k")
	if !ok || rec.Owner != "w2" {
		t.Fatalf("usurper lease disturbed: %+v ok=%v", rec, ok)
	}
	// Release on a lost claim must not remove the usurper's lease.
	c1.Release()
	if _, _, ok := m2.readLease("k"); !ok {
		t.Fatal("lost claim's Release removed the usurper's lease")
	}
	if m1.Stats().Lost != 1 {
		t.Errorf("lost stat = %d, want 1 (loss counted once)", m1.Stats().Lost)
	}
	c2.Release()
}

func TestConcurrentClaimSingleWinner(t *testing.T) {
	dir := t.TempDir()
	const workers = 8
	managers := make([]*Manager, workers)
	for i := range managers {
		managers[i] = mustOpen(t, dir, fmt.Sprintf("w%d", i))
	}
	for round := 0; round < 20; round++ {
		key := fmt.Sprintf("k%d", round)
		var mu sync.Mutex
		var winners []*Claim
		var wg sync.WaitGroup
		for _, m := range managers {
			wg.Add(1)
			go func(m *Manager) {
				defer wg.Done()
				c, err := m.Claim(key)
				if err != nil {
					t.Errorf("Claim: %v", err)
					return
				}
				if c.State == StateAcquired {
					mu.Lock()
					winners = append(winners, c)
					mu.Unlock()
				}
			}(m)
		}
		wg.Wait()
		if len(winners) != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1 (O_EXCL arbitration)", round, len(winners))
		}
		winners[0].Release()
	}
}

func TestSweepRemovesOnlyStaleLeases(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	cs, _ := m.Claim("stale")
	cf, _ := m.Claim("fresh")
	if cs.State != StateAcquired || cf.State != StateAcquired {
		t.Fatal("setup")
	}
	age(t, m, "stale", m.TTL()+time.Second)
	removed := m.Sweep([]string{"stale", "fresh", "absent"})
	if removed != 1 {
		t.Fatalf("Sweep removed %d, want 1", removed)
	}
	if _, err := os.Stat(m.leasePath("stale")); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale lease survived sweep")
	}
	if _, err := os.Stat(m.leasePath("fresh")); err != nil {
		t.Errorf("fresh lease swept: %v", err)
	}
	cf.Release()
}

// countingRegistry is a minimal Counters for asserting emission.
type countingRegistry struct {
	mu sync.Mutex
	m  map[string]int64
}

func (r *countingRegistry) Add(name string, d int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = map[string]int64{}
	}
	r.m[name] += d
}

func TestCountersEmitted(t *testing.T) {
	dir := t.TempDir()
	reg := &countingRegistry{}
	m := mustOpen(t, dir, "w1", func(c *Config) { c.Counters = reg })
	c, _ := m.Claim("a")
	c.Release()
	c, _ = m.Claim("b")
	m2 := mustOpen(t, dir, "w2", func(c *Config) { c.Counters = reg })
	advance := warpClock(m2)
	sight(t, m2, "b")
	advance(m2.TTL() + time.Second)
	c2, _ := m2.Claim("b")
	if !c2.Reclaimed {
		t.Fatal("setup: reclaim failed")
	}
	c2.Release()

	reg.mu.Lock()
	defer reg.mu.Unlock()
	want := map[string]int64{"lease.acquired": 2, "lease.released": 2, "lease.reclaimed": 1}
	for k, v := range want {
		if reg.m[k] != v {
			t.Errorf("counter %s = %d, want %d", k, reg.m[k], v)
		}
	}
}

// TestRenewBumpsSeq: every renewal rewrites the record with a larger sequence
// number — the signal observers use to tell a live holder from a dead one.
func TestRenewBumpsSeq(t *testing.T) {
	m := mustOpen(t, t.TempDir(), "w1")
	c, _ := m.Claim("k")
	if c.State != StateAcquired {
		t.Fatal("setup")
	}
	rec0, _, ok := m.readLease("k")
	if !ok || rec0.Seq == 0 {
		t.Fatalf("initial record = %+v ok=%v", rec0, ok)
	}
	for i := 0; i < 3; i++ {
		if err := c.Renew(); err != nil {
			t.Fatalf("Renew %d: %v", i, err)
		}
		rec, _, ok := m.readLease("k")
		if !ok {
			t.Fatalf("record unreadable after renew %d", i)
		}
		if rec.Seq <= rec0.Seq {
			t.Fatalf("renew %d: seq %d did not advance past %d", i, rec.Seq, rec0.Seq)
		}
		if rec.Owner != "w1" || rec.Attempt != rec0.Attempt {
			t.Fatalf("renew %d mutated identity: %+v", i, rec)
		}
		rec0 = rec
	}
	c.Release()
}

// TestLazyTimestampSafety: on a filesystem that never updates mtimes (the
// record looks ancient forever), a holder whose sequence numbers keep
// advancing must never be reclaimed. This is the hole mtime-based liveness
// had and the reason liveness now watches (owner, seq) pairs.
func TestLazyTimestampSafety(t *testing.T) {
	dir := t.TempDir()
	m1 := mustOpen(t, dir, "w1", func(c *Config) {
		c.TTL = 400 * time.Millisecond
		c.Heartbeat = 25 * time.Millisecond
	})
	m2 := mustOpen(t, dir, "w2", func(c *Config) { c.TTL = 400 * time.Millisecond })
	c1, _ := m1.Claim("k")
	if c1.State != StateAcquired {
		t.Fatal("setup")
	}
	c1.StartHeartbeat(context.Background())
	// Sabotage the mtime after every beat window, simulating a filesystem
	// with lazy (or frozen) timestamps, while a peer keeps trying to claim.
	deadline := time.Now().Add(1200 * time.Millisecond)
	for time.Now().Before(deadline) {
		past := time.Now().Add(-time.Hour)
		// Ignore races with the heartbeat's atomic rewrite: the file may be
		// mid-rename, and a miss just means the record keeps its fresh mtime.
		_ = os.Chtimes(m1.leasePath("k"), past, past)
		c2, err := m2.Claim("k")
		if err != nil {
			t.Fatalf("peer claim: %v", err)
		}
		if c2.State != StateBusy {
			t.Fatalf("peer claim = %+v, want busy: ancient mtime must not outrank advancing seq", c2)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c1.Release()
	if c1.Lost() {
		t.Error("holder lost lease despite continuous heartbeat")
	}
}

// TestLegacySeqlessLeaseMtimeFallback: lease records written before sequence
// numbers existed (PR 8 cache dirs) carry no seq field; liveness for those
// falls back to the mtime hint so old campaigns still resume.
func TestLegacySeqlessLeaseMtimeFallback(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir, "w1")
	legacy, _ := json.Marshal(record{Schema: testSchema, Key: "k", Owner: "ghost", Attempt: 2})
	if strings.Contains(string(legacy), "seq") {
		t.Fatalf("legacy record marshals a seq field: %s", legacy)
	}
	if err := os.WriteFile(m.leasePath("k"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	// Fresh legacy lease: busy, holder reported.
	c, err := m.Claim("k")
	if err != nil || c.State != StateBusy || c.Holder != "ghost" {
		t.Fatalf("fresh legacy claim = %+v, %v, want busy held by ghost", c, err)
	}
	// Aged legacy lease: reclaimable by mtime alone, attempts inherited.
	age(t, m, "k", m.TTL()+time.Second)
	c, err = m.Claim("k")
	if err != nil {
		t.Fatal(err)
	}
	if c.State != StateAcquired || !c.Reclaimed || c.Attempt != 3 {
		t.Fatalf("stale legacy claim = %+v, want acquired attempt 3 reclaimed", c)
	}
	c.Release()
}

func TestStatsMatchCounters(t *testing.T) {
	m := mustOpen(t, t.TempDir(), "w1")
	c, _ := m.Claim("x")
	c.Release()
	st := m.Stats()
	if st.Acquired != 1 || st.Released != 1 || st.Reclaimed != 0 || st.Lost != 0 || st.Poisoned != 0 {
		t.Errorf("stats = %+v", st)
	}
}
