// Package lease coordinates trial execution across worker *processes* that
// share nothing but a directory: crash-safe lease files make "who is
// executing this trial" a property of the filesystem, so a SIGKILLed worker
// loses its claims instead of taking them to the grave.
//
// The protocol is deliberately primitive — no daemon, no network, no clock
// service — because the campaign layer above it is idempotent: every trial
// is a pure function of its spec, results are published by atomic rename
// into a content-addressed cache, and two workers that accidentally execute
// the same trial publish byte-identical files. Leases therefore only have to
// make duplicate execution *rare*, never impossible; correctness (exactly
// once result bytes) comes from content addressing, efficiency comes from
// the lease. See DESIGN.md §15 for the full argument.
//
// One lease is one file, <dir>/<key>.lease, created with O_CREATE|O_EXCL so
// the filesystem arbitrates the initial race, written with the owner id and
// schema stamp, fsynced, and heartbeated by atomically rewriting the record
// with a bumped monotonic sequence number. Liveness is judged logically, not
// by mtime: an observer records the (owner, seq) pair it sees and presumes
// the holder dead only after watching that pair stay unchanged for a full
// TTL of its own clock — so filesystems with lazy, cached, or coarse
// timestamps cannot make a live worker look dead (or a dead one look live).
// The file's mtime survives only as a fallback hint for records that carry
// no sequence number (pre-seq lease files, foreign schemas, torn writes) and
// for Sweep's post-campaign cleanup. A stale lease may be reclaimed by any
// peer: the reclaimer writes its own record to a temp file and atomically
// renames it over the lease, then reads the file back — rename arbitrates,
// read-back decides. A reclaim increments the lease's attempt counter; when
// a trial has been reclaimed MaxAttempts times (a worker crash loop — the
// trial is killing its executors), it is quarantined instead: a
// <key>.poison marker records the attempts so every peer fails the trial
// fast into its degradation manifest rather than feeding it more workers.
package lease

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counters is the observability hook: obs.SyncRegistry satisfies it. Nil is
// a valid no-op.
type Counters interface {
	Add(name string, delta int64)
}

// Config parameterizes a Manager.
type Config struct {
	// Dir is the lease directory, usually <cache>/leases. Created if absent.
	Dir string
	// Owner is this process's identity, stamped into every lease it takes.
	// It must be unique across live workers sharing Dir (host-pid works).
	Owner string
	// Schema stamps lease and poison files; records under a different schema
	// are stale by definition (the trials they guarded are from another
	// world) and are reclaimed freely.
	Schema string
	// TTL is the staleness threshold: a lease whose (owner, seq) pair has
	// been observed unchanged for longer than TTL may be reclaimed by any
	// peer. Default 5s.
	TTL time.Duration
	// Heartbeat is the renewal period; it must be well under TTL or a busy
	// worker looks dead. Default TTL/3.
	Heartbeat time.Duration
	// MaxAttempts bounds how many times a trial may be claimed across all
	// workers before it is poisoned (quarantined). 0 means the default, 5.
	MaxAttempts int
	// Counters, when non-nil, receives the lease.* operational counters.
	Counters Counters
}

// Default timing constants. TTL trades reclaim latency against false
// takeovers under scheduler stalls; both are safe (duplicates publish
// identical bytes), so the default leans toward fast recovery.
const (
	DefaultTTL         = 5 * time.Second
	DefaultMaxAttempts = 5
)

// State classifies the outcome of a Claim.
type State int

const (
	// StateAcquired: the caller owns the lease and must execute the trial,
	// then Release (or Poison) it.
	StateAcquired State = iota
	// StateBusy: a live peer holds the lease; wait for its result (the
	// cache) or for the lease to go stale, then Claim again.
	StateBusy
	// StatePoisoned: the trial is quarantined; fail it fast into the
	// degradation manifest instead of executing.
	StatePoisoned
)

// record is the on-disk lease file. Seq is the logical heartbeat: the
// holder bumps it on every renewal, so liveness is visible in the record's
// content, never its mtime. A record with Seq zero predates sequence
// heartbeats (or was written by a foreign world) and is judged by the mtime
// fallback instead.
type record struct {
	Schema  string `json:"schema"`
	Key     string `json:"key"`
	Owner   string `json:"owner"`
	Attempt int    `json:"attempt"`
	Seq     uint64 `json:"seq,omitempty"`
}

// seqIncarnation spaces out the starting sequence number of every claim this
// process takes, so a release-then-reclaim of the same key by the same owner
// can never present an (owner, seq) pair a peer has already observed — that
// would make a live second incarnation look TTL-stale. Renewals bump by one;
// 2^32 renewals per claim is unreachable.
var seqIncarnation atomic.Uint64

func newSeq() uint64 { return seqIncarnation.Add(1) << 32 }

// ErrLost reports that a renewal or release found the lease taken over by a
// peer (this process was presumed dead). The trial may keep executing — its
// eventual publish is byte-identical to the usurper's — but the lease is no
// longer ours to extend.
var ErrLost = errors.New("lease: lease lost to a peer")

// Poison is the on-disk quarantine marker for a trial that exhausted its
// cross-worker attempts.
type Poison struct {
	Schema   string `json:"schema"`
	Key      string `json:"key"`
	SpecHash string `json:"specHash,omitempty"`
	Attempts int    `json:"attempts"`
	Err      string `json:"err"`
}

// Stats is a snapshot of the manager's lifetime counters.
type Stats struct {
	Acquired  int64 // leases taken via the O_EXCL fast path
	Reclaimed int64 // stale leases taken over from (presumed) dead peers
	Lost      int64 // our leases discovered taken over by a peer
	Released  int64 // leases released after a successful publish
	Poisoned  int64 // trials this manager quarantined
}

// observation is one remembered sighting of a peer's lease: the (owner, seq)
// pair and when this manager first saw it. Staleness is the pair surviving
// unchanged past the TTL on the observer's own clock.
type observation struct {
	owner string
	seq   uint64
	since time.Time
}

// Manager coordinates one process's leases under one directory. Safe for
// concurrent use by the worker pool.
type Manager struct {
	cfg Config

	// clock overrides the wall clock in tests; nil means time.Now.
	clock func() time.Time

	// obs tracks busy peers' (owner, seq) sightings per key, the basis of
	// the mtime-free staleness judgment.
	obsMu sync.Mutex
	obs   map[string]observation

	acquired  atomic.Int64
	reclaimed atomic.Int64
	lost      atomic.Int64
	released  atomic.Int64
	poisoned  atomic.Int64
}

// Open validates cfg, creates the lease directory, and returns a Manager.
func Open(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("lease: Config.Dir must not be empty")
	}
	if cfg.Owner == "" {
		return nil, errors.New("lease: Config.Owner must not be empty")
	}
	if strings.ContainsAny(cfg.Owner, "/\x00") {
		return nil, fmt.Errorf("lease: owner %q must be filename-safe", cfg.Owner)
	}
	if cfg.Schema == "" {
		return nil, errors.New("lease: Config.Schema must not be empty")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.TTL / 3
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lease: creating lease dir: %w", err)
	}
	return &Manager{cfg: cfg, obs: make(map[string]observation)}, nil
}

// Owner returns the manager's configured owner id.
func (m *Manager) Owner() string { return m.cfg.Owner }

// TTL returns the staleness threshold in effect.
func (m *Manager) TTL() time.Duration { return m.cfg.TTL }

// Heartbeat returns the renewal period in effect.
func (m *Manager) Heartbeat() time.Duration { return m.cfg.Heartbeat }

// Stats snapshots the lifetime counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Acquired:  m.acquired.Load(),
		Reclaimed: m.reclaimed.Load(),
		Lost:      m.lost.Load(),
		Released:  m.released.Load(),
		Poisoned:  m.poisoned.Load(),
	}
}

// now is the lease clock. Leases coordinate processes, not simulations:
// heartbeat and staleness are operational wall-clock concerns that no trial
// result ever reads, which is the justification for every wall-clock use in
// this package.
//
//lint:ignore nondetsource lease heartbeat/staleness is wall-clock coordination between worker processes; trial results never depend on it
func (m *Manager) now() time.Time {
	if m.clock != nil {
		return m.clock()
	}
	//lint:ignore nondetsource lease expiry is wall-clock coordination between processes; trial results never depend on it
	return time.Now()
}

// observe records (or refreshes) the sighting of (owner, seq) on key and
// returns how long this manager has watched that exact pair. A changed pair
// restarts the watch: the holder renewed, so it is alive.
func (m *Manager) observe(key, owner string, seq uint64, now time.Time) time.Duration {
	m.obsMu.Lock()
	defer m.obsMu.Unlock()
	o, ok := m.obs[key]
	if !ok || o.owner != owner || o.seq != seq {
		m.obs[key] = observation{owner: owner, seq: seq, since: now}
		return 0
	}
	return now.Sub(o.since)
}

// forgetObs drops the sighting for key: the lease was acquired, released,
// vanished, or poisoned, so any remembered (owner, seq) pair is moot.
func (m *Manager) forgetObs(key string) {
	m.obsMu.Lock()
	delete(m.obs, key)
	m.obsMu.Unlock()
}

func (m *Manager) add(name string, d int64) {
	if m.cfg.Counters != nil {
		m.cfg.Counters.Add(name, d)
	}
}

func (m *Manager) leasePath(key string) string {
	return filepath.Join(m.cfg.Dir, key+".lease")
}

func (m *Manager) poisonPath(key string) string {
	return filepath.Join(m.cfg.Dir, key+".poison")
}

// Claim attempts to take the lease for key. The returned Claim's State says
// what happened; only StateAcquired claims may execute (and must end in
// Release or Poison). Claim never blocks on peers — StateBusy is a hint to
// wait and retry, with Remaining estimating how long until the current
// lease could go stale.
func (m *Manager) Claim(key string) (*Claim, error) {
	if p, ok, err := m.readPoison(key); err != nil {
		return nil, err
	} else if ok {
		return &Claim{m: m, Key: key, State: StatePoisoned, Poison: p}, nil
	}

	path := m.leasePath(key)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err == nil {
		// We created the file: the filesystem arbitrated the initial race in
		// our favor. Fill it in and fsync so a crash cannot leave a lease
		// that lies about its owner for longer than one TTL.
		rec := record{Schema: m.cfg.Schema, Key: key, Owner: m.cfg.Owner, Attempt: 1, Seq: newSeq()}
		if werr := writeRecord(f, rec); werr != nil {
			f.Close()
			os.Remove(path)
			return nil, fmt.Errorf("lease: writing %s: %w", filepath.Base(path), werr)
		}
		if werr := f.Close(); werr != nil {
			os.Remove(path)
			return nil, fmt.Errorf("lease: closing %s: %w", filepath.Base(path), werr)
		}
		m.forgetObs(key)
		m.acquired.Add(1)
		m.add("lease.acquired", 1)
		return &Claim{m: m, Key: key, State: StateAcquired, Attempt: 1}, nil
	}
	if !errors.Is(err, fs.ErrExist) {
		return nil, fmt.Errorf("lease: creating %s: %w", filepath.Base(path), err)
	}

	// Somebody holds (or held) the lease. Records that carry a sequence
	// number are judged by logical observation — stale only once this
	// manager has watched the same (owner, seq) pair for a full TTL, so the
	// filesystem's timestamps are never trusted for liveness. Records
	// without one (pre-seq lease files, foreign schemas, torn writes) have
	// no heartbeat to observe; for those the mtime fallback hint decides.
	rec, mtime, ok := m.readLease(key)
	if mtime.IsZero() {
		// Vanished between EEXIST and stat: the holder just released it.
		// Report busy-with-zero-remaining so the caller re-claims promptly
		// (by then the cache usually answers first).
		m.forgetObs(key)
		return &Claim{m: m, Key: key, State: StateBusy}, nil
	}
	now := m.now()
	var (
		stale     bool
		remaining time.Duration
		holder    string
	)
	attempt := 2
	if ok && rec.Schema == m.cfg.Schema && rec.Seq != 0 {
		holder = rec.Owner
		attempt = rec.Attempt + 1
		watched := m.observe(key, rec.Owner, rec.Seq, now)
		stale = watched > m.cfg.TTL
		remaining = m.cfg.TTL - watched
	} else {
		age := now.Sub(mtime)
		stale = age > m.cfg.TTL
		remaining = m.cfg.TTL - age
		if ok {
			holder = rec.Owner
			if rec.Schema == m.cfg.Schema {
				attempt = rec.Attempt + 1
			}
		}
	}
	if !stale {
		return &Claim{m: m, Key: key, State: StateBusy, Holder: holder, Remaining: remaining}, nil
	}

	// Stale: reclaim, or poison when the trial has burned through its
	// attempt budget. An unreadable lease counts as one unknown attempt.
	if m.cfg.MaxAttempts > 0 && attempt > m.cfg.MaxAttempts {
		p := &Poison{
			Schema:   m.cfg.Schema,
			Key:      key,
			Attempts: attempt - 1,
			Err:      fmt.Sprintf("lease: trial reclaimed %d times without completing (worker crash loop)", attempt-1),
		}
		if perr := m.writePoison(key, p); perr != nil {
			return nil, perr
		}
		os.Remove(path) // best-effort; Sweep collects stragglers
		m.forgetObs(key)
		m.poisoned.Add(1)
		m.add("lease.poisoned", 1)
		return &Claim{m: m, Key: key, State: StatePoisoned, Poison: p}, nil
	}
	newRec := record{Schema: m.cfg.Schema, Key: key, Owner: m.cfg.Owner, Attempt: attempt, Seq: newSeq()}
	if err := m.writeLease(key, newRec); err != nil {
		return nil, err
	}
	// Rename arbitrated among concurrent reclaimers; read-back decides which
	// of us actually won. (Two reclaimers can both momentarily believe they
	// won if their rename/read-back windows interleave; the duplicate
	// execution that follows publishes identical bytes, and heartbeat
	// verification converges ownership. See DESIGN.md §15.)
	back, _, bok := m.readLease(key)
	m.forgetObs(key)
	if !bok || back.Owner != m.cfg.Owner {
		c := &Claim{m: m, Key: key, State: StateBusy, Remaining: m.cfg.TTL}
		if bok {
			c.Holder = back.Owner
		}
		return c, nil
	}
	m.reclaimed.Add(1)
	m.add("lease.reclaimed", 1)
	return &Claim{m: m, Key: key, State: StateAcquired, Attempt: attempt, Reclaimed: true}, nil
}

// readLease parses the lease file for key. ok reports a well-formed record;
// mtime is zero only when the file does not exist (or cannot be stat'ed).
func (m *Manager) readLease(key string) (rec record, mtime time.Time, ok bool) {
	path := m.leasePath(key)
	st, err := os.Stat(path)
	if err != nil {
		return record{}, time.Time{}, false
	}
	mtime = st.ModTime()
	data, err := os.ReadFile(path)
	if err != nil {
		return record{}, mtime, false
	}
	if err := json.Unmarshal(data, &rec); err != nil || rec.Key != key {
		return record{}, mtime, false
	}
	return rec, mtime, true
}

// writeLease atomically replaces the lease file for key with rec
// (temp + fsync + rename, then a directory fsync).
func (m *Manager) writeLease(key string, rec record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("lease: encoding lease: %w", err)
	}
	return writeFileAtomic(m.cfg.Dir, key+".lease", data)
}

// readPoison returns the quarantine marker for key, if one exists under the
// manager's schema. Foreign-schema markers are ignored (and removed: the
// world they poisoned no longer exists).
func (m *Manager) readPoison(key string) (*Poison, bool, error) {
	data, err := os.ReadFile(m.poisonPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("lease: reading poison marker: %w", err)
	}
	var p Poison
	if jerr := json.Unmarshal(data, &p); jerr != nil || p.Schema != m.cfg.Schema || p.Key != key {
		os.Remove(m.poisonPath(key))
		return nil, false, nil
	}
	return &p, true, nil
}

func (m *Manager) writePoison(key string, p *Poison) error {
	data, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return fmt.Errorf("lease: encoding poison marker: %w", err)
	}
	if err := writeFileAtomic(m.cfg.Dir, key+".poison", data); err != nil {
		return err
	}
	return nil
}

// Sweep removes stale lease files among the given keys: leftovers of
// workers that died after publishing their result but before releasing.
// Fresh leases (live peers still executing a duplicate) are left alone.
// Returns how many files were removed.
//
// Sweep is post-campaign cleanup, not a liveness decision: nothing is taken
// over, so it may use the mtime hint (every renewal rewrites the file, so a
// live holder's lease always has a recent mtime on any real filesystem). A
// lease a sweep wrongly removes is re-created by its holder's next renewal
// race at worst, and duplicates publish identical bytes.
func (m *Manager) Sweep(keys []string) int {
	removed := 0
	for _, key := range keys {
		_, mtime, _ := m.readLease(key)
		if mtime.IsZero() {
			continue
		}
		if m.now().Sub(mtime) > m.cfg.TTL {
			if os.Remove(m.leasePath(key)) == nil {
				removed++
			}
		}
	}
	return removed
}

// Claim is the outcome of Manager.Claim. For StateAcquired claims the
// caller runs the trial bracketed by StartHeartbeat and Release/Poison; the
// other states are informational.
type Claim struct {
	m   *Manager
	Key string
	// State says what happened; the remaining fields are state-specific.
	State State
	// Attempt is this execution's cross-worker attempt number (acquired).
	Attempt int
	// Reclaimed marks an acquisition that took over a stale lease.
	Reclaimed bool
	// Holder is the current owner when busy ("" if unreadable).
	Holder string
	// Remaining estimates how long until the busy lease could go stale.
	Remaining time.Duration
	// Poison is the quarantine record when poisoned.
	Poison *Poison

	lost   atomic.Bool
	stopHB chan struct{}
	hbDone chan struct{}
}

// StartHeartbeat begins renewing the lease every Config.Heartbeat until
// Release/Poison (or a discovered takeover) stops it, or ctx is cancelled —
// a campaign abort must not leave detached heartbeats extending leases for
// trials nobody is executing. Each beat verifies ownership before touching
// the file: a worker that was stopped long enough for a peer to reclaim
// discovers the loss here, marks the claim Lost, and stops — it must not
// resurrect or extend a lease it no longer owns.
func (c *Claim) StartHeartbeat(ctx context.Context) {
	if c.State != StateAcquired || c.stopHB != nil {
		return
	}
	c.stopHB = make(chan struct{})
	c.hbDone = make(chan struct{})
	go func() {
		defer close(c.hbDone)
		t := time.NewTicker(c.m.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-c.stopHB:
				return
			case <-t.C:
				if !c.beat() {
					return
				}
			}
		}
	}()
}

// Renew extends the lease once (one logical heartbeat): it verifies the
// record is still ours, then atomically rewrites it with the sequence number
// bumped. Peers see the changed (owner, seq) pair and restart their
// staleness watch; the file's mtime plays no part. ErrLost means a peer took
// the lease over (this process was presumed dead — SIGSTOP, scheduler
// stall); the trial keeps executing, its eventual publish is byte-identical
// to the usurper's, but the lease is no longer ours to extend.
func (c *Claim) Renew() error {
	if c.State != StateAcquired {
		return fmt.Errorf("lease: renewing a claim in state %d", c.State)
	}
	if c.lost.Load() {
		return ErrLost
	}
	rec, mtime, ok := c.m.readLease(c.Key)
	if mtime.IsZero() || !ok || rec.Owner != c.m.cfg.Owner {
		c.markLost()
		return ErrLost
	}
	rec.Seq++
	if err := c.m.writeLease(c.Key, rec); err != nil {
		c.markLost()
		return ErrLost
	}
	return nil
}

// beat renews the lease once; false stops the heartbeat loop.
func (c *Claim) beat() bool { return c.Renew() == nil }

// markLost records a takeover exactly once per claim.
func (c *Claim) markLost() {
	if !c.lost.Swap(true) {
		c.m.lost.Add(1)
		c.m.add("lease.lost", 1)
	}
}

// Lost reports whether the heartbeat discovered a peer took the lease over.
func (c *Claim) Lost() bool { return c.lost.Load() }

// stop halts the heartbeat goroutine, if any.
func (c *Claim) stop() {
	if c.stopHB == nil {
		return
	}
	select {
	case <-c.stopHB:
	default:
		close(c.stopHB)
	}
	<-c.hbDone
	c.stopHB = nil
	c.hbDone = nil
}

// Release ends an acquired claim after its result is published: heartbeat
// stopped, lease file removed (only if still ours — a usurper's lease is
// its own to release). Safe to call on lost claims.
func (c *Claim) Release() {
	if c.State != StateAcquired {
		return
	}
	c.stop()
	rec, mtime, ok := c.m.readLease(c.Key)
	if mtime.IsZero() || !ok || rec.Owner != c.m.cfg.Owner {
		c.markLost()
		return
	}
	if os.Remove(c.m.leasePath(c.Key)) == nil {
		c.m.released.Add(1)
		c.m.add("lease.released", 1)
	}
}

// PoisonTrial quarantines the claimed trial: every peer's next Claim
// returns StatePoisoned and fails the trial fast into its manifest. Used
// when the trial itself failed permanently (so peers inherit the failure
// instead of re-executing a deterministic error), and by Claim itself when
// the crash-loop attempt budget runs out. The lease is released.
func (c *Claim) PoisonTrial(specHash string, attempts int, cause error) error {
	if c.State != StateAcquired {
		return fmt.Errorf("lease: poisoning a claim in state %d", c.State)
	}
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	err := c.m.writePoison(c.Key, &Poison{
		Schema:   c.m.cfg.Schema,
		Key:      c.Key,
		SpecHash: specHash,
		Attempts: attempts,
		Err:      msg,
	})
	if err == nil {
		c.m.poisoned.Add(1)
		c.m.add("lease.poisoned", 1)
	}
	c.Release()
	return err
}

// writeRecord writes rec to an open lease file and fsyncs it.
func writeRecord(f *os.File, rec record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

// writeFileAtomic writes base under dir via temp + fsync + rename + dir
// fsync, so a reader (or a kill -9 survivor) sees either the old file, the
// new file, or nothing — never a torn write — and the rename survives a
// crash on filesystems that would otherwise reorder it past the data.
func writeFileAtomic(dir, base string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return fmt.Errorf("lease: creating temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("lease: writing %s: %w", base, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("lease: syncing %s: %w", base, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lease: closing %s: %w", base, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, base)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lease: committing %s: %w", base, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that cannot sync directories (some network mounts) report
// EINVAL/ENOTSUP; those are ignored — the rename is still atomic, only the
// crash-durability window widens.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("lease: opening dir for sync: %w", err)
	}
	err = d.Sync()
	//lint:ignore durability read-only directory handle; Sync's error above is the durable signal
	d.Close()
	if err != nil && (errors.Is(err, errInvalid) || errors.Is(err, errNotSupported)) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lease: syncing dir: %w", err)
	}
	return nil
}

var (
	errInvalid      = fs.ErrInvalid
	errNotSupported = errors.ErrUnsupported
)
