package lease

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkLeaseClaim measures the uncontended acquire+release cycle — the
// cost lease mode adds to every *executed* trial (warm-cache trials never
// reach the lease layer). Pinned in BENCH_baseline.json.
func BenchmarkLeaseClaim(b *testing.B) {
	m, err := Open(Config{Dir: b.TempDir(), Owner: "bench", Schema: "bench-v1", TTL: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := m.Claim(fmt.Sprintf("%016x", i))
		if err != nil {
			b.Fatal(err)
		}
		if c.State != StateAcquired {
			b.Fatalf("state = %v", c.State)
		}
		c.Release()
	}
}
