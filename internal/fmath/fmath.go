// Package fmath holds the approved floating-point comparison helpers for
// rate/time quantities. Exact ==/!= on computed floats is forbidden in the
// determinism-bearing packages (guritalint's floatcmp analyzer): two
// computations of "the same" rate can differ in the last bit depending on
// summation order, so exact comparison is how delta and batch allocation
// silently drift apart. Callers pick the epsilon that matches their
// quantity's scale (e.g. netmod's epsRate for bytes/second).
//
// Deliberate bitwise comparison — change detection on caller-set fields,
// the delta≡batch identity check itself — stays as ==/!= with a
// //lint:ignore floatcmp justification; see DESIGN.md §11.
package fmath

import "math"

// AlmostEqual reports whether a and b differ by at most eps.
func AlmostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// AtLeast reports whether a reaches b within tolerance eps, i.e. a >= b-eps.
// It is the tolerant form of ">=" used for saturation and completion
// checks, where an allocation a few ulps under its cap must count as
// having reached it.
func AtLeast(a, b, eps float64) bool {
	return a >= b-eps
}

// AlmostZero reports whether v lies within eps of zero.
func AlmostZero(v, eps float64) bool {
	return math.Abs(v) <= eps
}
