package fmath

import "testing"

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-9, 1e-6, true},
		{1, 1 + 1e-3, 1e-6, false},
		{-5, -5 - 1e-9, 1e-6, true},
		{0, 1e-7, 1e-6, true},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.eps); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

func TestAtLeast(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{10, 10, 0, true},
		{10 - 1e-9, 10, 1e-6, true},
		{10 - 1e-3, 10, 1e-6, false},
		{11, 10, 0, true},
	}
	for _, c := range cases {
		if got := AtLeast(c.a, c.b, c.eps); got != c.want {
			t.Errorf("AtLeast(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

func TestAlmostZero(t *testing.T) {
	if !AlmostZero(1e-9, 1e-6) || AlmostZero(1e-3, 1e-6) || !AlmostZero(0, 0) {
		t.Error("AlmostZero thresholds wrong")
	}
}
