package netmod

import (
	"testing"

	"gurita/internal/topo"
)

// Capacity-override tests: SetLinkCapacity/ClearLinkCapacity model fabric
// faults (a down link is capacity 0, a degraded NIC a fraction), so the
// incremental allocator must track overrides exactly like a from-scratch
// solve with the changed capacities would, and overrides must outlive Reset
// and batch Allocate calls — they describe the fabric, not the working set.

func overrideTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBigSwitch(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestSetLinkCapacityReallocates(t *testing.T) {
	tp := overrideTopo(t)
	a, err := NewAllocator(tp, 4, ModeSPQ)
	if err != nil {
		t.Fatal(err)
	}
	f := &FlowDemand{Path: tp.Path(0, 1, 0), Queue: 0}
	a.Register(f)
	a.Reallocate()
	if f.Rate != 1e9 {
		t.Fatalf("healthy rate = %v, want 1e9", f.Rate)
	}

	up := tp.ServerUplink(0)
	a.SetLinkCapacity(up, 2.5e8)
	a.Reallocate()
	if f.Rate != 2.5e8 {
		t.Fatalf("degraded rate = %v, want 2.5e8", f.Rate)
	}

	a.SetLinkCapacity(up, 0) // link down
	a.Reallocate()
	if f.Rate != 0 {
		t.Fatalf("down-link rate = %v, want 0", f.Rate)
	}

	a.ClearLinkCapacity(up)
	a.Reallocate()
	if f.Rate != 1e9 {
		t.Fatalf("restored rate = %v, want 1e9", f.Rate)
	}
	// Clearing a link that was never overridden is a no-op.
	a.ClearLinkCapacity(tp.ServerDownlink(3))
	a.Reallocate()
	if f.Rate != 1e9 {
		t.Fatalf("rate after no-op clear = %v, want 1e9", f.Rate)
	}
}

func TestOverrideMatchesBatchSolve(t *testing.T) {
	// An incrementally maintained allocator with an override must produce
	// the same rates as a fresh batch solve over a fabric-equivalent
	// allocator carrying the same override.
	tp := overrideTopo(t)
	inc, err := NewAllocator(tp, 4, ModeSPQ)
	if err != nil {
		t.Fatal(err)
	}
	flows := []*FlowDemand{
		{Path: tp.Path(0, 1, 0), Queue: 0},
		{Path: tp.Path(2, 1, 0), Queue: 0}, // shares dst downlink with the first
		{Path: tp.Path(3, 2, 0), Queue: 1},
	}
	for _, f := range flows {
		inc.Register(f)
	}
	inc.Reallocate()
	inc.SetLinkCapacity(tp.ServerDownlink(1), 4e8)
	inc.Reallocate()

	batch, err := NewAllocator(tp, 4, ModeSPQ)
	if err != nil {
		t.Fatal(err)
	}
	batch.SetLinkCapacity(tp.ServerDownlink(1), 4e8)
	ref := make([]*FlowDemand, len(flows))
	for i, f := range flows {
		snap := f.Snapshot()
		ref[i] = &snap
	}
	batch.Allocate(ref)
	for i := range flows {
		if flows[i].Rate != ref[i].Rate {
			t.Fatalf("flow %d: incremental rate %v != batch rate %v under override",
				i, flows[i].Rate, ref[i].Rate)
		}
	}
}

func TestOverrideSurvivesReset(t *testing.T) {
	tp := overrideTopo(t)
	a, err := NewAllocator(tp, 4, ModeSPQ)
	if err != nil {
		t.Fatal(err)
	}
	up := tp.ServerUplink(0)
	a.SetLinkCapacity(up, 1e8)

	f := &FlowDemand{Path: tp.Path(0, 1, 0), Queue: 0}
	a.Register(f)
	a.Reallocate()
	if f.Rate != 1e8 {
		t.Fatalf("rate = %v, want override 1e8", f.Rate)
	}

	a.Reset()
	g := &FlowDemand{Path: tp.Path(0, 1, 0), Queue: 0}
	a.Register(g)
	a.Reallocate()
	if g.Rate != 1e8 {
		t.Fatalf("rate after Reset = %v, want override 1e8 (overrides model the fabric)", g.Rate)
	}

	// Batch Allocate resets the working set but keeps the override too.
	h := &FlowDemand{Path: tp.Path(0, 1, 0), Queue: 0}
	a.Allocate([]*FlowDemand{h})
	if h.Rate != 1e8 {
		t.Fatalf("batch rate = %v, want override 1e8", h.Rate)
	}
}

func TestNegativeOverrideClampsToZero(t *testing.T) {
	tp := overrideTopo(t)
	a, err := NewAllocator(tp, 4, ModeSPQ)
	if err != nil {
		t.Fatal(err)
	}
	f := &FlowDemand{Path: tp.Path(0, 1, 0), Queue: 0}
	a.Register(f)
	a.SetLinkCapacity(tp.ServerUplink(0), -5)
	a.Reallocate()
	if f.Rate != 0 {
		t.Fatalf("rate = %v, want 0 (negative override clamps to down)", f.Rate)
	}
}
