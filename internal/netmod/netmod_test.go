package netmod

import (
	"math"
	"math/rand"
	"testing"

	"gurita/internal/topo"
)

func bigSwitch(t *testing.T, n int) *topo.Topology {
	t.Helper()
	bs, err := topo.NewBigSwitch(n, 100) // capacity 100 B/s for easy math
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func newAlloc(t *testing.T, tp *topo.Topology, queues int, mode Mode, opts ...Option) *Allocator {
	t.Helper()
	a, err := NewAllocator(tp, queues, mode, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func flow(tp *topo.Topology, src, dst topo.ServerID, queue int, maxRate float64) *FlowDemand {
	return &FlowDemand{
		Path:    tp.Path(src, dst, topo.ECMPHash(src, dst, uint64(src)<<16|uint64(dst))),
		Queue:   queue,
		MaxRate: maxRate,
	}
}

func TestNewAllocatorValidation(t *testing.T) {
	tp := bigSwitch(t, 4)
	if _, err := NewAllocator(tp, 0, ModeSPQ); err == nil {
		t.Error("0 queues should fail")
	}
	if _, err := NewAllocator(tp, 4, Mode(0)); err == nil {
		t.Error("invalid mode should fail")
	}
	if _, err := NewAllocator(tp, 4, ModeSPQ, WithUtilization(1.5)); err == nil {
		t.Error("eta >= 1 should fail")
	}
	if _, err := NewAllocator(tp, 4, ModeSPQ, WithUtilization(0.5)); err != nil {
		t.Errorf("valid config failed: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if ModeSPQ.String() != "spq" || ModeWRR.String() != "wrr" || Mode(9).String() == "" {
		t.Error("mode stringer wrong")
	}
}

// TestSingleFlowGetsLineRate: one flow alone receives full capacity.
func TestSingleFlowGetsLineRate(t *testing.T) {
	tp := bigSwitch(t, 4)
	a := newAlloc(t, tp, 4, ModeSPQ)
	f := flow(tp, 0, 1, 0, 0)
	a.Allocate([]*FlowDemand{f})
	if math.Abs(f.Rate-100) > 1e-6 {
		t.Fatalf("Rate = %v, want 100", f.Rate)
	}
}

// TestFairShareSameQueue: n flows from the same sender share its uplink
// equally (per-flow fair sharing, the PFS baseline's behaviour).
func TestFairShareSameQueue(t *testing.T) {
	tp := bigSwitch(t, 8)
	a := newAlloc(t, tp, 4, ModeSPQ)
	var fl []*FlowDemand
	for i := 1; i <= 4; i++ {
		fl = append(fl, flow(tp, 0, topo.ServerID(i), 0, 0))
	}
	a.Allocate(fl)
	for i, f := range fl {
		if math.Abs(f.Rate-25) > 1e-6 {
			t.Fatalf("flow %d rate = %v, want 25", i, f.Rate)
		}
	}
}

// TestSPQStrictPriority: with SPQ, a lower tier gets nothing while a higher
// tier saturates the shared link.
func TestSPQStrictPriority(t *testing.T) {
	tp := bigSwitch(t, 4)
	a := newAlloc(t, tp, 4, ModeSPQ)
	hi := flow(tp, 0, 1, 0, 0)
	lo := flow(tp, 0, 2, 3, 0) // shares the sender uplink
	a.Allocate([]*FlowDemand{hi, lo})
	if math.Abs(hi.Rate-100) > 1e-6 {
		t.Fatalf("high-priority rate = %v, want 100", hi.Rate)
	}
	if lo.Rate > 1e-6 {
		t.Fatalf("low-priority rate = %v, want 0 (starved under SPQ)", lo.Rate)
	}
}

// TestSPQUnusedPriorityFallsThrough: if the high tier is capped, the low
// tier picks up the remainder (work conservation across tiers).
func TestSPQUnusedPriorityFallsThrough(t *testing.T) {
	tp := bigSwitch(t, 4)
	a := newAlloc(t, tp, 4, ModeSPQ)
	hi := flow(tp, 0, 1, 0, 30)
	lo := flow(tp, 0, 2, 3, 0)
	a.Allocate([]*FlowDemand{hi, lo})
	if math.Abs(hi.Rate-30) > 1e-6 {
		t.Fatalf("capped high rate = %v, want 30", hi.Rate)
	}
	if math.Abs(lo.Rate-70) > 1e-6 {
		t.Fatalf("low rate = %v, want 70", lo.Rate)
	}
}

// TestWRRNoStarvation: under WRR the low tier keeps a positive share of a
// contended link — the paper's starvation mitigation.
func TestWRRNoStarvation(t *testing.T) {
	tp := bigSwitch(t, 4)
	a := newAlloc(t, tp, 4, ModeWRR)
	hi := flow(tp, 0, 1, 0, 0)
	lo := flow(tp, 0, 2, 3, 0)
	a.Allocate([]*FlowDemand{hi, lo})
	if lo.Rate <= 0 {
		t.Fatalf("low-priority rate = %v, want > 0 under WRR", lo.Rate)
	}
	if hi.Rate <= lo.Rate {
		t.Fatalf("priority inverted: hi %v <= lo %v", hi.Rate, lo.Rate)
	}
	if got := hi.Rate + lo.Rate; math.Abs(got-100) > 1e-6 {
		t.Fatalf("work conservation violated: total %v, want 100", got)
	}
}

// TestWRRSpillover: when the high tier cannot use its guarantee, the low
// tier receives the leftovers.
func TestWRRSpillover(t *testing.T) {
	tp := bigSwitch(t, 4)
	a := newAlloc(t, tp, 4, ModeWRR)
	hi := flow(tp, 0, 1, 0, 10)
	lo := flow(tp, 0, 2, 3, 0)
	a.Allocate([]*FlowDemand{hi, lo})
	if math.Abs(hi.Rate-10) > 1e-6 {
		t.Fatalf("hi rate = %v, want 10", hi.Rate)
	}
	if math.Abs(lo.Rate-90) > 1e-6 {
		t.Fatalf("lo rate = %v, want 90 (spillover)", lo.Rate)
	}
}

// TestMaxRateCap: per-flow caps are respected and surplus goes to others.
func TestMaxRateCap(t *testing.T) {
	tp := bigSwitch(t, 4)
	a := newAlloc(t, tp, 1, ModeSPQ)
	f1 := flow(tp, 0, 1, 0, 20)
	f2 := flow(tp, 0, 2, 0, 0)
	a.Allocate([]*FlowDemand{f1, f2})
	if math.Abs(f1.Rate-20) > 1e-6 || math.Abs(f2.Rate-80) > 1e-6 {
		t.Fatalf("rates = %v, %v; want 20, 80", f1.Rate, f2.Rate)
	}
}

// TestReceiverBottleneck: two senders into one receiver split the receiver
// downlink.
func TestReceiverBottleneck(t *testing.T) {
	tp := bigSwitch(t, 4)
	a := newAlloc(t, tp, 1, ModeSPQ)
	f1 := flow(tp, 0, 3, 0, 0)
	f2 := flow(tp, 1, 3, 0, 0)
	a.Allocate([]*FlowDemand{f1, f2})
	if math.Abs(f1.Rate-50) > 1e-6 || math.Abs(f2.Rate-50) > 1e-6 {
		t.Fatalf("rates = %v, %v; want 50, 50", f1.Rate, f2.Rate)
	}
}

// TestMaxMinAsymmetric is the classic parking-lot: flow A crosses both
// contended links, flows B and C each cross one. Max-min gives A its best
// bottleneck share and lets B, C take the rest.
func TestMaxMinAsymmetric(t *testing.T) {
	tp := bigSwitch(t, 6)
	a := newAlloc(t, tp, 1, ModeSPQ)
	// A: 0 -> 1. B: 0 -> 2 (shares A's uplink). C: 3 -> 1 (shares A's downlink).
	fa := flow(tp, 0, 1, 0, 0)
	fb := flow(tp, 0, 2, 0, 0)
	fc := flow(tp, 3, 1, 0, 0)
	a.Allocate([]*FlowDemand{fa, fb, fc})
	if math.Abs(fa.Rate-50) > 1e-6 {
		t.Fatalf("A rate = %v, want 50", fa.Rate)
	}
	if math.Abs(fb.Rate-50) > 1e-6 || math.Abs(fc.Rate-50) > 1e-6 {
		t.Fatalf("B, C rates = %v, %v; want 50, 50", fb.Rate, fc.Rate)
	}
}

// TestLocalFlowUnconstrained: an empty path (same-host transfer) gets its
// cap, or link capacity when uncapped, and consumes no fabric bandwidth.
func TestLocalFlowUnconstrained(t *testing.T) {
	tp := bigSwitch(t, 4)
	a := newAlloc(t, tp, 1, ModeSPQ)
	local := &FlowDemand{Path: nil, Queue: 0, MaxRate: 42}
	other := flow(tp, 0, 1, 0, 0)
	a.Allocate([]*FlowDemand{local, other})
	if local.Rate != 42 {
		t.Fatalf("local rate = %v, want 42", local.Rate)
	}
	if math.Abs(other.Rate-100) > 1e-6 {
		t.Fatalf("other rate = %v, want 100", other.Rate)
	}
	uncapped := &FlowDemand{}
	a.Allocate([]*FlowDemand{uncapped})
	if uncapped.Rate != 100 {
		t.Fatalf("uncapped local rate = %v, want link capacity 100", uncapped.Rate)
	}
}

// TestQueueClamping: out-of-range queue indices are clamped, not dropped.
func TestQueueClamping(t *testing.T) {
	tp := bigSwitch(t, 4)
	a := newAlloc(t, tp, 4, ModeSPQ)
	f1 := flow(tp, 0, 1, -5, 0)
	f2 := flow(tp, 2, 3, 99, 0)
	a.Allocate([]*FlowDemand{f1, f2})
	if f1.Rate != 100 || f2.Rate != 100 {
		t.Fatalf("rates = %v, %v; want 100, 100", f1.Rate, f2.Rate)
	}
}

// TestAllocatorReuse: repeated Allocate calls on changing flow sets give
// the same result as a fresh allocator (scratch state fully reset).
func TestAllocatorReuse(t *testing.T) {
	tp := bigSwitch(t, 8)
	a := newAlloc(t, tp, 4, ModeSPQ)
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 50; round++ {
		var fl []*FlowDemand
		n := 1 + rng.Intn(10)
		for i := 0; i < n; i++ {
			fl = append(fl, flow(tp,
				topo.ServerID(rng.Intn(8)), topo.ServerID(rng.Intn(8)),
				rng.Intn(4), 0))
		}
		a.Allocate(fl)
		fresh := newAlloc(t, tp, 4, ModeSPQ)
		want := make([]float64, len(fl))
		for i, f := range fl {
			want[i] = f.Rate
		}
		fresh.Allocate(fl)
		for i, f := range fl {
			if math.Abs(f.Rate-want[i]) > 1e-6 {
				t.Fatalf("round %d flow %d: reused %v vs fresh %v", round, i, want[i], f.Rate)
			}
		}
	}
}

// checkConservation verifies per-link conservation: summed rates never
// exceed capacity (within epsilon).
func checkConservation(t *testing.T, tp *topo.Topology, fl []*FlowDemand) {
	t.Helper()
	usage := make(map[topo.LinkID]float64)
	for _, f := range fl {
		for _, l := range f.Path {
			usage[l] += f.Rate
		}
	}
	for l, u := range usage {
		if u > tp.LinkCapacity(l)+1e-6*tp.LinkCapacity(l)+1e-6 {
			t.Fatalf("link %d over capacity: %v > %v", l, u, tp.LinkCapacity(l))
		}
	}
}

// checkWorkConserving: if a flow is unsatisfied (below its cap or uncapped
// and finite), some link on its path must be (nearly) saturated.
func checkWorkConserving(t *testing.T, tp *topo.Topology, fl []*FlowDemand) {
	t.Helper()
	usage := make(map[topo.LinkID]float64)
	for _, f := range fl {
		for _, l := range f.Path {
			usage[l] += f.Rate
		}
	}
	for i, f := range fl {
		if len(f.Path) == 0 {
			continue
		}
		if f.MaxRate > 0 && f.Rate >= f.MaxRate-1e-6 {
			continue // satisfied
		}
		saturated := false
		for _, l := range f.Path {
			if usage[l] >= tp.LinkCapacity(l)-1e-3 {
				saturated = true
				break
			}
		}
		if !saturated {
			t.Fatalf("flow %d unsatisfied (rate %v, cap %v) with no saturated link on path", i, f.Rate, f.MaxRate)
		}
	}
}

// TestPropertiesRandomFatTree: conservation and work conservation hold on
// random flow sets over a FatTree, in both modes.
func TestPropertiesRandomFatTree(t *testing.T) {
	ft, err := topo.NewFatTree(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeSPQ, ModeWRR} {
		a := newAlloc(t, ft, 4, mode)
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 100; trial++ {
			var fl []*FlowDemand
			n := 1 + rng.Intn(30)
			for i := 0; i < n; i++ {
				src := topo.ServerID(rng.Intn(ft.NumServers()))
				dst := topo.ServerID(rng.Intn(ft.NumServers()))
				var maxRate float64
				if rng.Intn(3) == 0 {
					maxRate = 10 + 90*rng.Float64()
				}
				fl = append(fl, &FlowDemand{
					Path:    ft.Path(src, dst, rng.Uint64()),
					Queue:   rng.Intn(4),
					MaxRate: maxRate,
				})
			}
			a.Allocate(fl)
			checkConservation(t, ft, fl)
			checkWorkConserving(t, ft, fl)
			for i, f := range fl {
				if f.Rate < 0 || math.IsNaN(f.Rate) || math.IsInf(f.Rate, 0) {
					t.Fatalf("mode %v flow %d: bad rate %v", mode, i, f.Rate)
				}
			}
		}
	}
}

// TestMaxMinProperty: within one tier, no flow can be raised without
// lowering an equal-or-smaller flow: every flow is either capped or crosses
// a saturated link where it has a maximal rate among that link's flows.
func TestMaxMinProperty(t *testing.T) {
	ft, err := topo.NewFatTree(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	a := newAlloc(t, ft, 1, ModeSPQ)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		var fl []*FlowDemand
		for i := 0; i < 20; i++ {
			src := topo.ServerID(rng.Intn(ft.NumServers()))
			dst := topo.ServerID(rng.Intn(ft.NumServers()))
			fl = append(fl, &FlowDemand{Path: ft.Path(src, dst, rng.Uint64())})
		}
		a.Allocate(fl)
		usage := make(map[topo.LinkID]float64)
		maxAt := make(map[topo.LinkID]float64)
		for _, f := range fl {
			for _, l := range f.Path {
				usage[l] += f.Rate
				if f.Rate > maxAt[l] {
					maxAt[l] = f.Rate
				}
			}
		}
		for i, f := range fl {
			if len(f.Path) == 0 {
				continue
			}
			ok := false
			for _, l := range f.Path {
				if usage[l] >= 100-1e-3 && f.Rate >= maxAt[l]-1e-6 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d flow %d (rate %v) violates max-min: no saturated bottleneck where it is maximal", trial, i, f.Rate)
			}
		}
	}
}

func BenchmarkAllocateSPQ(b *testing.B) {
	ft, _ := topo.NewFatTree(8, 1.25e9)
	a, _ := NewAllocator(ft, 4, ModeSPQ)
	rng := rand.New(rand.NewSource(5))
	var fl []*FlowDemand
	for i := 0; i < 500; i++ {
		src := topo.ServerID(rng.Intn(ft.NumServers()))
		dst := topo.ServerID(rng.Intn(ft.NumServers()))
		fl = append(fl, &FlowDemand{Path: ft.Path(src, dst, rng.Uint64()), Queue: rng.Intn(4)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allocate(fl)
	}
}

func BenchmarkAllocateWRR(b *testing.B) {
	ft, _ := topo.NewFatTree(8, 1.25e9)
	a, _ := NewAllocator(ft, 4, ModeWRR)
	rng := rand.New(rand.NewSource(5))
	var fl []*FlowDemand
	for i := 0; i < 500; i++ {
		src := topo.ServerID(rng.Intn(ft.NumServers()))
		dst := topo.ServerID(rng.Intn(ft.NumServers()))
		fl = append(fl, &FlowDemand{Path: ft.Path(src, dst, rng.Uint64()), Queue: rng.Intn(4)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allocate(fl)
	}
}

// The delta benchmarks measure what the simulator actually pays per event:
// one flow changes queue among 500 standing registrations, and Reallocate
// re-solves only the dirty tier suffix (SPQ) or the coupled WRR system.
func BenchmarkReallocateDeltaSPQ(b *testing.B) { benchReallocateDelta(b, ModeSPQ) }
func BenchmarkReallocateDeltaWRR(b *testing.B) { benchReallocateDelta(b, ModeWRR) }

func benchReallocateDelta(b *testing.B, mode Mode) {
	ft, _ := topo.NewFatTree(8, 1.25e9)
	a, _ := NewAllocator(ft, 4, mode)
	rng := rand.New(rand.NewSource(5))
	var fl []*FlowDemand
	for i := 0; i < 500; i++ {
		src := topo.ServerID(rng.Intn(ft.NumServers()))
		dst := topo.ServerID(rng.Intn(ft.NumServers()))
		fl = append(fl, &FlowDemand{Path: ft.Path(src, dst, rng.Uint64()), Queue: rng.Intn(4)})
	}
	for _, f := range fl {
		a.Register(f)
	}
	a.Reallocate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fl[i%len(fl)]
		f.Queue = (f.Queue + 1) % 4
		a.Update(f)
		a.Reallocate()
	}
}
