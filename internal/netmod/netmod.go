// Package netmod models how the fabric divides link bandwidth among
// competing flows. It is the simulator's stand-in for the data plane the
// paper assumes: commodity switches with strict priority queuing (SPQ)
// carrying TCP traffic, optionally emulating SPQ with weighted round robin
// (WRR) for starvation mitigation (paper §IV.B).
//
// The model is fluid: at any instant every flow transmits at a single rate,
// and the allocator computes those rates from the flows' paths, priority
// queues, and per-flow caps. Within one priority tier the allocation is
// max-min fair (progressive filling / water-filling), which is the standard
// flow-level approximation of many TCP flows sharing links.
//
// The allocator is delta-driven: callers Register flows once, report
// changes with Update, retire flows with Unregister, and call Reallocate to
// refresh rates. Reallocate re-solves only from the lowest priority tier a
// delta touched — under SPQ, tiers above it are provably unaffected — while
// producing rates bit-identical to a from-scratch solve (see Reallocate).
// The batch Allocate entry point is retained as a thin wrapper and as the
// reference implementation the equivalence tests compare against.
package netmod

import (
	"fmt"
	"math"

	"gurita/internal/fmath"
	"gurita/internal/topo"
)

// Mode selects how priority tiers share a link.
type Mode int

// Allocation modes.
const (
	// ModeSPQ is strict priority queuing: tier q receives bandwidth only
	// after every tier < q is satisfied. This matches commodity-switch SPQ
	// and can starve low tiers.
	ModeSPQ Mode = iota + 1
	// ModeWRR emulates SPQ with weighted round robin: every tier is
	// guaranteed a share derived from the paper's SPQ waiting-time formula,
	// so low-priority traffic keeps trickling (starvation mitigation).
	ModeWRR
)

func (m Mode) String() string {
	switch m {
	case ModeSPQ:
		return "spq"
	case ModeWRR:
		return "wrr"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// FlowDemand is one active flow as seen by the allocator. The simulator owns
// these structs and reuses them across allocation rounds.
type FlowDemand struct {
	// Path is the sequence of directed links the flow traverses. An empty
	// path denotes a host-local transfer that never touches the fabric.
	// The path must not change while the flow is registered.
	Path []topo.LinkID
	// Queue is the priority tier (0 = highest). Values outside [0, queues)
	// are clamped.
	Queue int
	// MaxRate caps the flow's rate in bytes/second (the sender NIC or a
	// pacer). Zero means uncapped.
	MaxRate float64
	// Rate is the allocator's output, in bytes/second.
	Rate float64

	frozen bool

	// Delta-engine bookkeeping (valid while registered).
	registered bool
	tier       int     // clamped Queue; -1 for host-local flows
	tierIdx    int     // index into Allocator.byQueue[tier] (or local)
	capSeen    float64 // MaxRate at the last Register/Update
}

// Snapshot returns a copy of the demand carrying only its inputs (path,
// queue, cap) with clean allocator bookkeeping — the form a reference batch
// Allocate expects when cross-checking an incrementally maintained set.
func (f *FlowDemand) Snapshot() FlowDemand {
	return FlowDemand{Path: f.Path, Queue: f.Queue, MaxRate: f.MaxRate}
}

// Allocator computes per-flow rates. It pre-sizes its state for one topology
// and is reused across allocation instants; it is not safe for concurrent
// use.
type Allocator struct {
	mode   Mode
	queues int
	eta    float64 // target utilization used when deriving WRR weights

	capacity func(topo.LinkID) float64
	// override holds per-link capacity overrides set by SetLinkCapacity
	// (failed or degraded links); -1 means "no override, use the topology
	// capacity". nil until the first override — the fault-free path never
	// touches it.
	override []float64
	residual []float64
	count    []int32

	// Persistent registries maintained by Register/Unregister/Update.
	used    []topo.LinkID // links crossed by >= 1 registered flow
	usedIdx []int32       // position of a link in used; -1 when absent
	linkRef []int32       // per-link registered-flow crossing count
	byQueue [][]*FlowDemand
	local   []*FlowDemand // registered host-local flows (empty paths)

	// tierRes[q][l] snapshots the residual capacity of link l at the start
	// of tier q's water-fill during the last solve. Restoring tierRes[q]
	// reproduces exactly the link state a from-scratch solve would present
	// to tier q, which is what makes the partial re-solve bit-exact.
	tierRes [][]float64
	// dirtyMin is the lowest tier touched by a delta since the last
	// Reallocate; == queues when no delta is pending.
	dirtyMin int

	// Reusable scratch (no per-Reallocate allocation).
	wrrShares  []float64
	wrrWeights []float64
	pool       []float64
	spill      []*FlowDemand
	touched    []topo.LinkID // links with >= 1 unfrozen crossing flow, compacted
	touchedIdx []int32       // per-link position in touched (valid for touched links)
	linkFlows  [][]int32     // per-link unfrozen-flow (work index) lists for the fill
	satBuf     []topo.LinkID // links that saturated in the current round
	work       []*FlowDemand // stable snapshot of the fill's unfrozen flows
	workN      int           // high-water mark of work entries holding pointers
	live       []int32       // work indices still unfrozen, compacted between rounds
	livePos    []int32       // work index -> position in live

	// Cumulative work counters (see Stats). Plain increments on paths that
	// already do real work, so they cost nothing measurable and — being
	// derived purely from the demand trajectory — are deterministic.
	stReallocs   int64
	stTierSolves int64
	stWFRounds   int64
}

// Stats are cumulative allocator work counters since construction: how many
// Reallocate calls did work, how many per-tier water-fill passes ran (SPQ
// suffix re-solves, WRR guaranteed-share phases and spill passes all count),
// and how many progressive-filling rounds those passes iterated. They are a
// pure function of the demand trajectory, so identical runs report identical
// stats; the engine folds them into Result.Counters.
type Stats struct {
	Reallocs        int64
	TierSolves      int64
	WaterfillRounds int64
}

// Stats returns the allocator's cumulative work counters.
func (a *Allocator) Stats() Stats {
	return Stats{
		Reallocs:        a.stReallocs,
		TierSolves:      a.stTierSolves,
		WaterfillRounds: a.stWFRounds,
	}
}

// Option configures an Allocator.
type Option func(*Allocator)

// WithUtilization sets the target utilization η used to convert per-queue
// demand shares into the offered loads ρ_k of the WRR weight formula.
// η must be in (0, 1); the default is 0.95.
func WithUtilization(eta float64) Option {
	return func(a *Allocator) { a.eta = eta }
}

// NewAllocator builds an allocator for the given fabric with the given
// number of priority queues (the paper uses 4 in evaluation; commodity
// switches support 8).
func NewAllocator(t *topo.Topology, queues int, mode Mode, opts ...Option) (*Allocator, error) {
	if queues < 1 {
		return nil, fmt.Errorf("netmod: need at least one queue, got %d", queues)
	}
	if mode != ModeSPQ && mode != ModeWRR {
		return nil, fmt.Errorf("netmod: unknown mode %v", mode)
	}
	n := t.NumLinks()
	a := &Allocator{
		mode:       mode,
		queues:     queues,
		eta:        0.95,
		capacity:   t.LinkCapacity,
		residual:   make([]float64, n),
		count:      make([]int32, n),
		usedIdx:    make([]int32, n),
		linkRef:    make([]int32, n),
		byQueue:    make([][]*FlowDemand, queues),
		tierRes:    make([][]float64, queues),
		dirtyMin:   queues,
		wrrShares:  make([]float64, queues),
		wrrWeights: make([]float64, queues),
		pool:       make([]float64, n),
		touchedIdx: make([]int32, n),
		linkFlows:  make([][]int32, n),
	}
	for i := range a.usedIdx {
		a.usedIdx[i] = -1
	}
	for q := range a.tierRes {
		a.tierRes[q] = make([]float64, n)
	}
	for _, o := range opts {
		o(a)
	}
	if a.eta <= 0 || a.eta >= 1 {
		return nil, fmt.Errorf("netmod: utilization must be in (0,1), got %v", a.eta)
	}
	return a, nil
}

// Queues returns the number of priority tiers.
func (a *Allocator) Queues() int { return a.queues }

// Mode returns the configured allocation mode.
func (a *Allocator) Mode() Mode { return a.mode }

// rate tolerance: completions and saturation use this epsilon, scaled to
// typical 10G capacities.
const epsRate = 1e-3 // bytes/second

// linkCap returns link l's effective capacity: the override when one is in
// force, the topology capacity otherwise.
func (a *Allocator) linkCap(l topo.LinkID) float64 {
	if a.override != nil {
		if c := a.override[l]; c >= 0 {
			return c
		}
	}
	return a.capacity(l)
}

// SetLinkCapacity overrides link l's capacity to c bytes/second (0 = the
// link is down) until ClearLinkCapacity. The override takes effect at the
// next Reallocate: if the link currently carries registered flows the whole
// fabric is re-solved from the top tier (the changed entering capacity can
// shift every tier's water level), otherwise only the stored snapshots are
// refreshed so a later Register sees the new value. Overrides survive Reset
// and batch Allocate calls — they model the fabric, not the working set.
func (a *Allocator) SetLinkCapacity(l topo.LinkID, c float64) {
	if c < 0 {
		c = 0
	}
	if a.override == nil {
		a.override = make([]float64, len(a.residual))
		for i := range a.override {
			a.override[i] = -1
		}
	}
	a.override[l] = c
	a.capacityChanged(l)
}

// ClearLinkCapacity removes link l's capacity override.
func (a *Allocator) ClearLinkCapacity(l topo.LinkID) {
	if a.override == nil || a.override[l] < 0 {
		return
	}
	a.override[l] = -1
	a.capacityChanged(l)
}

// capacityChanged refreshes the per-tier residual snapshots of link l after
// its effective capacity moved. For a link with registered flows the
// snapshot entering tier 0 is the capacity itself and every later tier's
// snapshot is stale, so the next Reallocate re-solves from tier 0 — exactly
// the arithmetic a from-scratch solve with the new capacity performs. For an
// unused link the snapshots simply track the capacity a future Register
// would copy in.
func (a *Allocator) capacityChanged(l topo.LinkID) {
	c := a.linkCap(l)
	if a.linkRef[l] > 0 {
		a.tierRes[0][l] = c
		a.dirtyMin = 0
		return
	}
	for q := range a.tierRes {
		a.tierRes[q][l] = c
	}
}

// clampQueue maps an arbitrary Queue value into [0, queues).
func (a *Allocator) clampQueue(q int) int {
	if q < 0 {
		return 0
	}
	if q >= a.queues {
		return a.queues - 1
	}
	return q
}

// Register adds a flow to the allocator's working set. Host-local flows
// (empty path) receive their rate immediately and never dirty the fabric;
// fabric flows mark their tier dirty. Registering an already-registered
// flow is a no-op.
func (a *Allocator) Register(f *FlowDemand) {
	if f.registered {
		return
	}
	f.registered = true
	f.capSeen = f.MaxRate
	if len(f.Path) == 0 {
		// Host-local transfer: the fabric does not constrain it.
		f.tier = -1
		f.tierIdx = len(a.local)
		a.local = append(a.local, f)
		f.Rate = f.MaxRate
		if f.Rate == 0 {
			f.Rate = a.linkCap(0)
		}
		f.frozen = true
		return
	}
	f.Rate = 0
	f.frozen = false
	t := a.clampQueue(f.Queue)
	f.tier = t
	f.tierIdx = len(a.byQueue[t])
	a.byQueue[t] = append(a.byQueue[t], f)
	for _, l := range f.Path {
		if a.linkRef[l] == 0 {
			a.usedIdx[l] = int32(len(a.used))
			a.used = append(a.used, l)
			// A link no registered flow crossed carries no load at any
			// tier, so its residual entering every tier is its capacity.
			c := a.linkCap(l)
			for q := range a.tierRes {
				a.tierRes[q][l] = c
			}
		}
		a.linkRef[l]++
	}
	if t < a.dirtyMin {
		a.dirtyMin = t
	}
}

// Unregister removes a flow from the working set. Unregistering a flow that
// is not registered is a no-op.
func (a *Allocator) Unregister(f *FlowDemand) {
	if !f.registered {
		return
	}
	f.registered = false
	if f.tier < 0 {
		a.removeLocal(f)
		return
	}
	a.removeFromTier(f)
	for _, l := range f.Path {
		a.linkRef[l]--
		if a.linkRef[l] == 0 {
			i := a.usedIdx[l]
			last := len(a.used) - 1
			moved := a.used[last]
			a.used[i] = moved
			a.usedIdx[moved] = i
			a.used = a.used[:last]
			a.usedIdx[l] = -1
		}
	}
	if f.tier < a.dirtyMin {
		a.dirtyMin = f.tier
	}
}

// Update notifies the allocator that a registered flow's Queue or MaxRate
// changed. Path changes are not supported: Unregister and Register instead.
// Calling Update on a flow whose fields did not change is a cheap no-op, so
// callers may over-report.
func (a *Allocator) Update(f *FlowDemand) {
	if !f.registered {
		return
	}
	if f.tier < 0 {
		//lint:ignore floatcmp change detection on a caller-set field: bitwise compare is intended; an epsilon would silently drop small real updates
		if f.MaxRate != f.capSeen {
			f.capSeen = f.MaxRate
			f.Rate = f.MaxRate
			if f.Rate == 0 {
				f.Rate = a.linkCap(0)
			}
		}
		return
	}
	if t := a.clampQueue(f.Queue); t != f.tier {
		old := f.tier
		a.removeFromTier(f)
		f.tier = t
		f.tierIdx = len(a.byQueue[t])
		a.byQueue[t] = append(a.byQueue[t], f)
		if old < a.dirtyMin {
			a.dirtyMin = old
		}
		if t < a.dirtyMin {
			a.dirtyMin = t
		}
	}
	//lint:ignore floatcmp change detection on a caller-set field: bitwise compare is intended; an epsilon would silently drop small real updates
	if f.MaxRate != f.capSeen {
		f.capSeen = f.MaxRate
		if f.tier < a.dirtyMin {
			a.dirtyMin = f.tier
		}
	}
}

// removeFromTier swap-removes a fabric flow from its tier registry.
func (a *Allocator) removeFromTier(f *FlowDemand) {
	fl := a.byQueue[f.tier]
	last := len(fl) - 1
	moved := fl[last]
	fl[f.tierIdx] = moved
	moved.tierIdx = f.tierIdx
	fl[last] = nil
	a.byQueue[f.tier] = fl[:last]
}

// removeLocal swap-removes a host-local flow from the local registry.
func (a *Allocator) removeLocal(f *FlowDemand) {
	last := len(a.local) - 1
	moved := a.local[last]
	a.local[f.tierIdx] = moved
	moved.tierIdx = f.tierIdx
	a.local[last] = nil
	a.local = a.local[:last]
}

// Dirty reports whether any delta since the last Reallocate requires rates
// to be recomputed.
func (a *Allocator) Dirty() bool { return a.dirtyMin < a.queues }

// Reset unregisters every flow, returning the allocator to its initial
// state. The next Reallocate after new registrations runs a full solve.
func (a *Allocator) Reset() {
	for q := range a.byQueue {
		for i, f := range a.byQueue[q] {
			f.registered = false
			a.byQueue[q][i] = nil
		}
		a.byQueue[q] = a.byQueue[q][:0]
	}
	for i, f := range a.local {
		f.registered = false
		a.local[i] = nil
	}
	a.local = a.local[:0]
	for _, l := range a.used {
		a.linkRef[l] = 0
		a.usedIdx[l] = -1
	}
	a.used = a.used[:0]
	a.dirtyMin = 0
}

// Reallocate recomputes rates after deltas. Under SPQ it restores the link
// residuals snapshotted at the start of the lowest dirty tier and re-runs
// the water-fill for that tier and every one below it; higher tiers keep
// their rates. This is bit-identical to a from-scratch solve: a tier's
// water-fill depends only on its own flow set and on the residual capacity
// higher tiers left behind, and both are unchanged for tiers above the
// lowest delta (progressive filling itself is iteration-order independent,
// so re-solving a suffix of tiers replays exactly the arithmetic the batch
// path would perform). Under WRR every delta forces a full re-solve, because
// the demand-share weights couple all tiers. No-op when nothing is dirty.
func (a *Allocator) Reallocate() {
	if a.dirtyMin >= a.queues {
		return
	}
	a.stReallocs++
	switch a.mode {
	case ModeSPQ:
		start := a.dirtyMin
		res := a.tierRes[start]
		for _, l := range a.used {
			a.residual[l] = res[l]
		}
		for q := start; q < a.queues; q++ {
			if q > start {
				snap := a.tierRes[q]
				for _, l := range a.used {
					snap[l] = a.residual[l]
				}
			}
			fl := a.byQueue[q]
			for _, f := range fl {
				f.Rate = 0
				f.frozen = false
			}
			a.registerCounts(fl)
			a.waterfill(fl)
		}
	case ModeWRR:
		a.reallocateWRR()
	}
	a.dirtyMin = a.queues
}

// Allocate assigns Rate to every flow in flows, replacing any previously
// registered working set — the batch entry point, equivalent to Reset,
// Register for every flow, and one full Reallocate. Rates satisfy:
//
//   - per-link conservation: the sum of rates crossing any link never
//     exceeds its capacity;
//   - SPQ: a tier receives bandwidth on a link only from what higher tiers
//     left; WRR: each tier is guaranteed its weight share, and unused
//     guarantees spill over (work conserving);
//   - within a tier, max-min fairness subject to MaxRate caps.
func (a *Allocator) Allocate(flows []*FlowDemand) {
	a.Reset()
	for _, f := range flows {
		// The batch contract predates registration: the input is the whole
		// working set, whatever state the structs carry (e.g. snapshots of
		// demands registered elsewhere).
		f.registered = false
		a.Register(f)
	}
	a.Reallocate()
	// An empty flow set registers nothing, leaving Reset's forced dirty
	// marker in place; clear it so Dirty() stays accurate.
	a.dirtyMin = a.queues
}

// reallocateWRR implements the two-phase WRR emulation from the persistent
// registries: phase one gives each tier its guaranteed weight share of every
// link; phase two pools the leftovers and water-fills across all still-
// unsatisfied flows, making the discipline work conserving like a real WRR
// scheduler.
func (a *Allocator) reallocateWRR() {
	for _, l := range a.used {
		a.residual[l] = a.linkCap(l)
	}
	total := 0.0
	for q := range a.byQueue {
		for _, f := range a.byQueue[q] {
			f.Rate = 0
			f.frozen = false
		}
		a.wrrShares[q] = float64(len(a.byQueue[q]))
		total += a.wrrShares[q]
	}
	if total > 0 {
		for q := range a.wrrShares {
			a.wrrShares[q] /= total
		}
	}
	weights := starvationWeightsInto(a.wrrWeights, a.wrrShares, a.eta)

	// Phase 1: per-tier guaranteed share. We shrink each touched link's
	// residual to the tier's slice, run the water-fill, then return what the
	// tier did not consume to the common pool.
	for _, l := range a.used {
		a.pool[l] = a.residual[l]
		a.residual[l] = 0
	}
	for q := 0; q < a.queues; q++ {
		if len(a.byQueue[q]) == 0 {
			continue
		}
		for _, l := range a.used {
			a.residual[l] = a.pool[l] * weights[q]
		}
		a.registerCounts(a.byQueue[q])
		a.waterfill(a.byQueue[q])
		for _, l := range a.used {
			// Whatever the tier left of its slice returns to the pool as
			// "unguaranteed" capacity, shrinking the pool by what was used.
			a.pool[l] -= a.pool[l]*weights[q] - a.residual[l]
			a.residual[l] = 0
		}
	}

	// Phase 2: spill leftover capacity to every flow not yet at its cap.
	for _, l := range a.used {
		a.residual[l] = a.pool[l]
	}
	spill := a.spill[:0]
	for q := 0; q < a.queues; q++ {
		for _, f := range a.byQueue[q] {
			if f.MaxRate > 0 && fmath.AtLeast(f.Rate, f.MaxRate, epsRate) {
				continue
			}
			f.frozen = false
			spill = append(spill, f)
		}
	}
	a.registerCounts(spill)
	a.waterfill(spill)
	for i := range spill {
		spill[i] = nil
	}
	a.spill = spill[:0]
}

// registerCounts builds the water-fill's working indexes in one pass over
// fl: the per-link unfrozen crossing counts, the compacted touched-link
// list (with per-link positions so freezes can swap-remove), the per-link
// flow lists the freeze sweep walks when a link saturates, and the stable
// work/live arrays the rounds iterate. Link lists hold int32 work indices,
// not pointers, so resetting them never touches the GC.
//
//alloc:free one pass over fl reusing the allocator's pooled index arrays
func (a *Allocator) registerCounts(fl []*FlowDemand) {
	for _, l := range a.used {
		a.count[l] = 0
	}
	work := a.work[:0]
	live := a.live[:0]
	touched := a.touched[:0]
	for _, f := range fl {
		if f.frozen {
			continue
		}
		j := int32(len(work))
		work = append(work, f)
		live = append(live, j)
		if int(j) < len(a.livePos) {
			a.livePos[j] = j
		} else {
			a.livePos = append(a.livePos, j)
		}
		for _, l := range f.Path {
			if a.count[l] == 0 {
				a.touchedIdx[l] = int32(len(touched))
				touched = append(touched, l)
				a.linkFlows[l] = a.linkFlows[l][:0]
			}
			a.count[l]++
			a.linkFlows[l] = append(a.linkFlows[l], j)
		}
	}
	// Drop demand pointers only beyond this fill's length: consecutive
	// fills are similarly sized, so the per-call clearing cost is the size
	// delta, not the whole working set.
	n := len(work)
	if a.workN > n {
		tail := work[n:a.workN]
		for i := range tail {
			tail[i] = nil
		}
	}
	a.work, a.workN = work, n
	a.live = live
	a.touched = touched
}

// freeze retires work flow j from the current fill: its path counts drop,
// links left with no unfrozen crossing flow leave the touched list, and the
// flow leaves the live set. All removals are O(1) swap-removes.
//
//alloc:free swap-removes over the compacted work/live/touched arrays
func (a *Allocator) freeze(j int32) {
	f := a.work[j]
	f.frozen = true
	for _, l := range f.Path {
		a.count[l]--
		if a.count[l] == 0 {
			ti := a.touchedIdx[l]
			last := len(a.touched) - 1
			lastL := a.touched[last]
			a.touched[ti] = lastL
			a.touchedIdx[lastL] = ti
			a.touched = a.touched[:last]
		}
	}
	p := a.livePos[j]
	last := int32(len(a.live) - 1)
	lastJ := a.live[last]
	a.live[p] = lastJ
	a.livePos[lastJ] = p
	a.live = a.live[:last]
}

// capSlack over-bounds the float error the capLB bookkeeping in waterfill
// can accumulate in one round (~1e-12 relative, versus ~1e-16 actual), so
// the scan-skip decisions stay conservative. Slack only gates which scans
// run — never the arithmetic — so overshooting costs a redundant scan, not
// correctness.
func capSlack(x, d float64) float64 {
	return 1e-12 * (math.Abs(x) + math.Abs(d) + 1)
}

// waterfill runs progressive filling over the working set registerCounts
// just built against the current residual capacities: all unfrozen flows'
// rates rise together; a flow freezes when a link on its path saturates or
// it reaches MaxRate. Residuals are decremented in place.
//
// Every structural shortcut below is a bit-exact rewrite of the naive full
// scans — the iteration sets shrink, never the arithmetic:
//
//   - The round's water level d is a pure min, so scanning only touched
//     links (all of which have count > 0 by construction) and skipping the
//     cap scan when capLB proves no cap can bound d yields the same value.
//   - Rate increments and count decrements commute, so freeze order within
//     a round is free; a round's freeze set is determined by residuals
//     fixed before the sweep, so walking only the flows of links that
//     saturated this round (a.linkFlows) freezes exactly the flows the
//     full per-flow path scan would.
//   - capLB conservatively lower-bounds the live flows' smallest cap
//     headroom (MaxRate − Rate). It decides only whether the exact scans
//     run, never what they compute, so its float slack (capSlack) cannot
//     perturb rates.
//
//alloc:free the per-solve rounds run entirely over the pooled work arrays
func (a *Allocator) waterfill(fl []*FlowDemand) {
	a.stTierSolves++
	// Each round saturates at least one link or caps at least one flow, so
	// rounds are bounded; the guard protects against float corner cases.
	maxRounds := len(a.used) + len(fl) + 2
	capLB := math.Inf(-1) // forces an exact cap scan in round one
	for round := 0; len(a.live) > 0 && round < maxRounds; round++ {
		a.stWFRounds++
		// The water level can rise by the smallest per-link fair share...
		linkMin := -1.0
		for _, l := range a.touched {
			s := a.residual[l] / float64(a.count[l])
			if linkMin < 0 || s < linkMin {
				linkMin = s
			}
		}
		// ...or until the nearest per-flow cap, whichever is smaller. The
		// scan only runs when a cap could actually bound this round.
		d := linkMin
		if linkMin < 0 || linkMin > capLB {
			rm := math.Inf(1)
			hasCap := false
			for _, j := range a.live {
				f := a.work[j]
				if f.MaxRate <= 0 {
					continue
				}
				hasCap = true
				if room := f.MaxRate - f.Rate; room < rm {
					rm = room
				}
			}
			capLB = rm // +Inf when no live flow is capped, skipping all cap work
			if hasCap && (d < 0 || rm < d) {
				d = rm
			}
		}
		if d < 0 {
			break // no constrained links and no caps: nothing bounds rates
		}
		// No live flow can reach its cap this round when the smallest
		// headroom exceeds the rise by more than the freeze tolerance.
		sweepCaps := !math.IsInf(capLB, 1) && capLB-d <= epsRate+capSlack(capLB, d)
		a.satBuf = a.satBuf[:0]
		if d > 0 {
			for _, j := range a.live {
				a.work[j].Rate += d
			}
			for _, l := range a.touched {
				a.residual[l] -= d * float64(a.count[l])
				if a.residual[l] < 0 {
					a.residual[l] = 0
				}
				if a.residual[l] <= epsRate {
					a.satBuf = append(a.satBuf, l)
				}
			}
		} else {
			// d == 0: nothing moved, but links may sit at (or below) the
			// saturation tolerance already — their flows must still freeze.
			for _, l := range a.touched {
				if a.residual[l] <= epsRate {
					a.satBuf = append(a.satBuf, l)
				}
			}
		}
		if !math.IsInf(capLB, 1) {
			capLB -= d + capSlack(capLB, d)
		}
		// Freeze capped flows (only when one can exist this round)...
		if sweepCaps {
			for i := 0; i < len(a.live); i++ {
				j := a.live[i]
				f := a.work[j]
				if f.MaxRate > 0 && fmath.AtLeast(f.Rate, f.MaxRate, epsRate) {
					a.freeze(j)
					i--
				}
			}
		}
		// ...then every flow crossing a link that saturated this round.
		for _, l := range a.satBuf {
			for _, j := range a.linkFlows[l] {
				if !a.work[j].frozen {
					a.freeze(j)
				}
			}
		}
	}
}
