// Package netmod models how the fabric divides link bandwidth among
// competing flows. It is the simulator's stand-in for the data plane the
// paper assumes: commodity switches with strict priority queuing (SPQ)
// carrying TCP traffic, optionally emulating SPQ with weighted round robin
// (WRR) for starvation mitigation (paper §IV.B).
//
// The model is fluid: at any instant every flow transmits at a single rate,
// and the allocator computes those rates from the flows' paths, priority
// queues, and per-flow caps. Within one priority tier the allocation is
// max-min fair (progressive filling / water-filling), which is the standard
// flow-level approximation of many TCP flows sharing links.
package netmod

import (
	"fmt"

	"gurita/internal/topo"
)

// Mode selects how priority tiers share a link.
type Mode int

// Allocation modes.
const (
	// ModeSPQ is strict priority queuing: tier q receives bandwidth only
	// after every tier < q is satisfied. This matches commodity-switch SPQ
	// and can starve low tiers.
	ModeSPQ Mode = iota + 1
	// ModeWRR emulates SPQ with weighted round robin: every tier is
	// guaranteed a share derived from the paper's SPQ waiting-time formula,
	// so low-priority traffic keeps trickling (starvation mitigation).
	ModeWRR
)

func (m Mode) String() string {
	switch m {
	case ModeSPQ:
		return "spq"
	case ModeWRR:
		return "wrr"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// FlowDemand is one active flow as seen by the allocator. The simulator owns
// these structs and reuses them across allocation rounds.
type FlowDemand struct {
	// Path is the sequence of directed links the flow traverses. An empty
	// path denotes a host-local transfer that never touches the fabric.
	Path []topo.LinkID
	// Queue is the priority tier (0 = highest). Values outside [0, queues)
	// are clamped.
	Queue int
	// MaxRate caps the flow's rate in bytes/second (the sender NIC or a
	// pacer). Zero means uncapped.
	MaxRate float64
	// Rate is the allocator's output, in bytes/second.
	Rate float64

	frozen bool
}

// Allocator computes per-flow rates. It pre-sizes its scratch state for one
// topology and is reused across allocation instants; it is not safe for
// concurrent use.
type Allocator struct {
	mode   Mode
	queues int
	eta    float64 // target utilization used when deriving WRR weights

	capacity  func(topo.LinkID) float64
	residual  []float64
	count     []int32
	touched   []bool
	used      []topo.LinkID
	byQueue   [][]*FlowDemand
	wrrShares []float64
}

// Option configures an Allocator.
type Option func(*Allocator)

// WithUtilization sets the target utilization η used to convert per-queue
// demand shares into the offered loads ρ_k of the WRR weight formula.
// η must be in (0, 1); the default is 0.95.
func WithUtilization(eta float64) Option {
	return func(a *Allocator) { a.eta = eta }
}

// NewAllocator builds an allocator for the given fabric with the given
// number of priority queues (the paper uses 4 in evaluation; commodity
// switches support 8).
func NewAllocator(t *topo.Topology, queues int, mode Mode, opts ...Option) (*Allocator, error) {
	if queues < 1 {
		return nil, fmt.Errorf("netmod: need at least one queue, got %d", queues)
	}
	if mode != ModeSPQ && mode != ModeWRR {
		return nil, fmt.Errorf("netmod: unknown mode %v", mode)
	}
	a := &Allocator{
		mode:      mode,
		queues:    queues,
		eta:       0.95,
		capacity:  t.LinkCapacity,
		residual:  make([]float64, t.NumLinks()),
		count:     make([]int32, t.NumLinks()),
		touched:   make([]bool, t.NumLinks()),
		byQueue:   make([][]*FlowDemand, queues),
		wrrShares: make([]float64, queues),
	}
	for _, o := range opts {
		o(a)
	}
	if a.eta <= 0 || a.eta >= 1 {
		return nil, fmt.Errorf("netmod: utilization must be in (0,1), got %v", a.eta)
	}
	return a, nil
}

// Queues returns the number of priority tiers.
func (a *Allocator) Queues() int { return a.queues }

// Mode returns the configured allocation mode.
func (a *Allocator) Mode() Mode { return a.mode }

// rate tolerance: completions and saturation use this epsilon, scaled to
// typical 10G capacities.
const epsRate = 1e-3 // bytes/second

// Allocate assigns Rate to every flow in flows. Rates satisfy:
//
//   - per-link conservation: the sum of rates crossing any link never
//     exceeds its capacity;
//   - SPQ: a tier receives bandwidth on a link only from what higher tiers
//     left; WRR: each tier is guaranteed its weight share, and unused
//     guarantees spill over (work conserving);
//   - within a tier, max-min fairness subject to MaxRate caps.
func (a *Allocator) Allocate(flows []*FlowDemand) {
	// Reset scratch state from the previous round.
	for _, l := range a.used {
		a.residual[l] = 0
		a.count[l] = 0
		a.touched[l] = false
	}
	a.used = a.used[:0]
	for q := range a.byQueue {
		a.byQueue[q] = a.byQueue[q][:0]
	}

	for _, f := range flows {
		f.Rate = 0
		f.frozen = false
		q := f.Queue
		if q < 0 {
			q = 0
		} else if q >= a.queues {
			q = a.queues - 1
		}
		if len(f.Path) == 0 {
			// Host-local transfer: the fabric does not constrain it.
			f.Rate = f.MaxRate
			if f.Rate == 0 {
				f.Rate = a.capacity(0)
			}
			f.frozen = true
			continue
		}
		a.byQueue[q] = append(a.byQueue[q], f)
		for _, l := range f.Path {
			if !a.touched[l] {
				a.touched[l] = true
				a.residual[l] = a.capacity(l)
				a.used = append(a.used, l)
			}
		}
	}

	switch a.mode {
	case ModeSPQ:
		for q := 0; q < a.queues; q++ {
			a.registerCounts(a.byQueue[q])
			a.waterfill(a.byQueue[q])
		}
	case ModeWRR:
		a.allocateWRR(flows)
	}
}

// allocateWRR implements the two-phase WRR emulation: phase one gives each
// tier its guaranteed weight share of every link; phase two pools the
// leftovers and water-fills across all still-unsatisfied flows, making the
// discipline work conserving like a real WRR scheduler.
func (a *Allocator) allocateWRR(flows []*FlowDemand) {
	shares := a.demandShares(flows)
	weights := StarvationWeights(shares, a.eta)

	// Phase 1: per-tier guaranteed share. We shrink each touched link's
	// residual to the tier's slice, run the water-fill, then return what the
	// tier did not consume to the common pool.
	pool := make(map[topo.LinkID]float64, len(a.used))
	for _, l := range a.used {
		pool[l] = a.residual[l]
		a.residual[l] = 0
	}
	for q := 0; q < a.queues; q++ {
		if len(a.byQueue[q]) == 0 {
			continue
		}
		for _, l := range a.used {
			a.residual[l] = pool[l] * weights[q]
		}
		a.registerCounts(a.byQueue[q])
		a.waterfill(a.byQueue[q])
		for _, l := range a.used {
			// Whatever the tier left of its slice returns to the pool as
			// "unguaranteed" capacity, shrinking the pool by what was used.
			pool[l] -= pool[l]*weights[q] - a.residual[l]
			a.residual[l] = 0
		}
	}

	// Phase 2: spill leftover capacity to every flow not yet at its cap.
	for _, l := range a.used {
		a.residual[l] = pool[l]
	}
	spill := make([]*FlowDemand, 0, len(flows))
	for _, f := range flows {
		if len(f.Path) == 0 {
			continue
		}
		if f.MaxRate > 0 && f.Rate >= f.MaxRate-epsRate {
			continue
		}
		f.frozen = false
		spill = append(spill, f)
	}
	a.registerCounts(spill)
	a.waterfill(spill)
}

// demandShares estimates each tier's share of total offered load, used to
// derive WRR weights. The proxy for offered load is the number of active
// flows per tier; receivers can observe it (open connections) without any
// knowledge of flow sizes, consistent with the paper's information model.
func (a *Allocator) demandShares(flows []*FlowDemand) []float64 {
	for q := range a.wrrShares {
		a.wrrShares[q] = 0
	}
	total := 0.0
	for _, f := range flows {
		if len(f.Path) == 0 {
			continue
		}
		q := f.Queue
		if q < 0 {
			q = 0
		} else if q >= a.queues {
			q = a.queues - 1
		}
		a.wrrShares[q]++
		total++
	}
	if total > 0 {
		for q := range a.wrrShares {
			a.wrrShares[q] /= total
		}
	}
	return a.wrrShares
}

// registerCounts records how many unfrozen flows cross each link.
func (a *Allocator) registerCounts(fl []*FlowDemand) {
	for _, l := range a.used {
		a.count[l] = 0
	}
	for _, f := range fl {
		if f.frozen {
			continue
		}
		for _, l := range f.Path {
			a.count[l]++
		}
	}
}

// waterfill runs progressive filling over fl against the current residual
// capacities: all unfrozen flows' rates rise together; a flow freezes when a
// link on its path saturates or it reaches MaxRate. Counts must have been
// registered with registerCounts. Residuals are decremented in place.
func (a *Allocator) waterfill(fl []*FlowDemand) {
	active := 0
	for _, f := range fl {
		if !f.frozen {
			active++
		}
	}
	// Each round saturates at least one link or caps at least one flow, so
	// rounds are bounded; the guard protects against float corner cases.
	maxRounds := len(a.used) + len(fl) + 2
	for round := 0; active > 0 && round < maxRounds; round++ {
		// The water level can rise by the smallest per-link fair share...
		d := -1.0
		for _, l := range a.used {
			if a.count[l] == 0 {
				continue
			}
			s := a.residual[l] / float64(a.count[l])
			if d < 0 || s < d {
				d = s
			}
		}
		// ...or until the nearest per-flow cap, whichever is smaller.
		for _, f := range fl {
			if f.frozen || f.MaxRate <= 0 {
				continue
			}
			if room := f.MaxRate - f.Rate; d < 0 || room < d {
				d = room
			}
		}
		if d < 0 {
			break // no constrained links and no caps: nothing bounds rates
		}
		if d > 0 {
			for _, f := range fl {
				if f.frozen {
					continue
				}
				f.Rate += d
			}
			for _, l := range a.used {
				if a.count[l] > 0 {
					a.residual[l] -= d * float64(a.count[l])
					if a.residual[l] < 0 {
						a.residual[l] = 0
					}
				}
			}
		}
		// Freeze flows that hit a saturated link or their cap.
		for _, f := range fl {
			if f.frozen {
				continue
			}
			capped := f.MaxRate > 0 && f.Rate >= f.MaxRate-epsRate
			saturated := false
			if !capped {
				for _, l := range f.Path {
					if a.residual[l] <= epsRate {
						saturated = true
						break
					}
				}
			}
			if capped || saturated {
				f.frozen = true
				active--
				for _, l := range f.Path {
					a.count[l]--
				}
			}
		}
	}
}
