package netmod

import (
	"fmt"
	"math/rand"
	"testing"

	"gurita/internal/topo"
)

// The delta engine's contract is exact equivalence: after any sequence of
// Register/Unregister/Update deltas, Reallocate must leave every registered
// flow with a Rate bit-identical to what a from-scratch batch Allocate over
// the same flow set produces. These tests drive random churn sequences over
// random topologies and compare against the batch reference after every
// step, in both SPQ and WRR modes.

// churnHarness pairs an incrementally maintained allocator with a batch
// reference over the same topology.
type churnHarness struct {
	t    *testing.T
	tp   *topo.Topology
	inc  *Allocator
	ref  *Allocator
	rng  *rand.Rand
	live []*FlowDemand // flows registered with inc
	refl []*FlowDemand // parallel batch copies, same order
}

func newChurnHarness(t *testing.T, tp *topo.Topology, queues int, mode Mode, seed int64) *churnHarness {
	inc, err := NewAllocator(tp, queues, mode)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewAllocator(tp, queues, mode)
	if err != nil {
		t.Fatal(err)
	}
	return &churnHarness{t: t, tp: tp, inc: inc, ref: ref, rng: rand.New(rand.NewSource(seed))}
}

// randomFlow builds a flow over a random server pair (sometimes host-local)
// with a random queue (sometimes out of range, exercising clamping) and a
// random cap (sometimes uncapped).
func (h *churnHarness) randomFlow() *FlowDemand {
	n := h.tp.NumServers()
	src := topo.ServerID(h.rng.Intn(n))
	dst := topo.ServerID(h.rng.Intn(n))
	var path []topo.LinkID
	if h.rng.Intn(10) > 0 { // 10%: host-local (empty path)
		path = h.tp.Path(src, dst, h.rng.Uint64())
	}
	f := &FlowDemand{
		Path:  path,
		Queue: h.rng.Intn(h.inc.Queues()+2) - 1,
	}
	if h.rng.Intn(4) > 0 {
		f.MaxRate = h.tp.LinkCapacity(0) * (0.05 + h.rng.Float64())
	}
	return f
}

// step applies one random delta to the incremental allocator.
func (h *churnHarness) step() {
	op := h.rng.Intn(10)
	switch {
	case len(h.live) == 0 || op < 4: // add
		f := h.randomFlow()
		h.inc.Register(f)
		h.live = append(h.live, f)
	case op < 6: // remove
		i := h.rng.Intn(len(h.live))
		h.inc.Unregister(h.live[i])
		h.live[i] = h.live[len(h.live)-1]
		h.live = h.live[:len(h.live)-1]
	case op < 8: // requeue
		f := h.live[h.rng.Intn(len(h.live))]
		f.Queue = h.rng.Intn(h.inc.Queues()+2) - 1
		h.inc.Update(f)
	default: // change cap
		f := h.live[h.rng.Intn(len(h.live))]
		f.MaxRate = h.tp.LinkCapacity(0) * (0.05 + h.rng.Float64())
		h.inc.Update(f)
	}
}

// check reallocates incrementally and compares every rate exactly against a
// batch solve of copied demands.
func (h *churnHarness) check(stepNo int) {
	h.inc.Reallocate()

	h.refl = h.refl[:0]
	for _, f := range h.live {
		c := *f
		c.registered = false
		c.Rate = 0
		h.refl = append(h.refl, &c)
	}
	h.ref.Allocate(h.refl)

	for i, f := range h.live {
		if got, want := f.Rate, h.refl[i].Rate; got != want {
			h.t.Fatalf("step %d: flow %d (queue %d, %d links): incremental rate %v != batch rate %v",
				stepNo, i, f.Queue, len(f.Path), got, want)
		}
	}
}

func testTopologies(t *testing.T) map[string]*topo.Topology {
	ft, err := topo.NewFatTree(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := topo.NewLeafSpine(4, 2, 6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := topo.NewBigSwitch(12, 0)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*topo.Topology{"fattree4": ft, "leafspine": ls, "bigswitch": bs}
}

// TestIncrementalMatchesBatchUnderChurn is the allocator equivalence
// property test: random flow churn, every rate compared exactly after every
// reallocation.
func TestIncrementalMatchesBatchUnderChurn(t *testing.T) {
	const steps = 400
	for name, tp := range testTopologies(t) {
		for _, mode := range []Mode{ModeSPQ, ModeWRR} {
			for _, queues := range []int{1, 4} {
				for seed := int64(1); seed <= 3; seed++ {
					t.Run(fmt.Sprintf("%s/%v/q%d/seed%d", name, mode, queues, seed), func(t *testing.T) {
						h := newChurnHarness(t, tp, queues, mode, seed)
						for i := 0; i < steps; i++ {
							h.step()
							h.check(i)
						}
					})
				}
			}
		}
	}
}

// TestReallocateSkipsWhenClean verifies the dirty tracking: no deltas means
// no pending work, and deltas that do not change the effective tier or cap
// (requeue to a value clamping to the same tier, cap rewritten with the same
// value) keep the allocator clean.
func TestReallocateSkipsWhenClean(t *testing.T) {
	tp, err := topo.NewBigSwitch(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAllocator(tp, 4, ModeSPQ)
	if err != nil {
		t.Fatal(err)
	}
	f := &FlowDemand{Path: tp.Path(0, 1, 0), Queue: 5, MaxRate: 1e9}
	a.Register(f)
	if !a.Dirty() {
		t.Fatal("Register must mark the allocator dirty")
	}
	a.Reallocate()
	if a.Dirty() {
		t.Fatal("Reallocate must clear the dirty state")
	}
	rate := f.Rate

	f.Queue = 7 // clamps to tier 3, same as 5
	a.Update(f)
	f.MaxRate = 1e9 // unchanged
	a.Update(f)
	if a.Dirty() {
		t.Fatal("no-op updates must not dirty the allocator")
	}
	a.Reallocate()
	if f.Rate != rate {
		t.Fatalf("clean Reallocate changed the rate: %v != %v", f.Rate, rate)
	}

	f.Queue = 1
	a.Update(f)
	if !a.Dirty() {
		t.Fatal("a tier change must dirty the allocator")
	}
}

// TestUnregisterRestoresCapacity checks that retiring flows releases their
// links: a lone remaining flow returns to its full cap after churn.
func TestUnregisterRestoresCapacity(t *testing.T) {
	tp, err := topo.NewBigSwitch(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeSPQ, ModeWRR} {
		a, err := NewAllocator(tp, 4, mode)
		if err != nil {
			t.Fatal(err)
		}
		path := tp.Path(0, 1, 0)
		keep := &FlowDemand{Path: path, Queue: 3}
		a.Register(keep)
		var others []*FlowDemand
		for i := 0; i < 5; i++ {
			f := &FlowDemand{Path: path, Queue: 0}
			a.Register(f)
			others = append(others, f)
		}
		a.Reallocate()
		for _, f := range others {
			a.Unregister(f)
		}
		a.Reallocate()
		if want := tp.LinkCapacity(path[0]); keep.Rate != want {
			t.Fatalf("%v: lone flow rate %v, want full capacity %v", mode, keep.Rate, want)
		}
	}
}
