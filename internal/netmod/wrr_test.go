package netmod

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSPQWaitingTimesOrdering(t *testing.T) {
	// Equal loads: waiting time must strictly increase with queue index
	// (lower priority waits longer under SPQ).
	rho := []float64{0.2, 0.2, 0.2, 0.2}
	w := SPQWaitingTimes(rho)
	for k := 1; k < len(w); k++ {
		if w[k] <= w[k-1] {
			t.Fatalf("waiting times not increasing: %v", w)
		}
	}
}

func TestSPQWaitingTimesZeroLoad(t *testing.T) {
	w := SPQWaitingTimes([]float64{0, 0.5, 0})
	if w[0] != 0 || w[2] != 0 {
		t.Fatalf("zero-load queues should have zero wait, got %v", w)
	}
	if w[1] <= 0 {
		t.Fatalf("loaded queue should wait, got %v", w)
	}
}

func TestSPQWaitingTimesOverload(t *testing.T) {
	w := SPQWaitingTimes([]float64{0.6, 0.6})
	if w[1] < 1e17 {
		t.Fatalf("overloaded queue should have unbounded wait, got %v", w)
	}
	// Negative loads are treated as zero.
	w = SPQWaitingTimes([]float64{-1, 0.5})
	if w[0] != 0 {
		t.Fatalf("negative load should clamp to 0, got %v", w)
	}
}

func TestWRRWeightsBasics(t *testing.T) {
	shares := []float64{0.25, 0.25, 0.25, 0.25}
	w := WRRWeights(shares, 0.95)
	sum := 0.0
	for k, x := range w {
		if x <= 0 {
			t.Fatalf("weight %d = %v, want > 0", k, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	// Priority order preserved: weight decreases with queue index.
	for k := 1; k < len(w); k++ {
		if w[k] >= w[k-1] {
			t.Fatalf("weights not decreasing: %v", w)
		}
	}
}

func TestWRRWeightsEmptyQueues(t *testing.T) {
	w := WRRWeights([]float64{0, 1, 0, 0}, 0.95)
	if w[0] != 0 || w[2] != 0 || w[3] != 0 {
		t.Fatalf("empty queues should have zero weight: %v", w)
	}
	if math.Abs(w[1]-1) > 1e-9 {
		t.Fatalf("single non-empty queue should get weight 1: %v", w)
	}
}

func TestWRRWeightsNoDemand(t *testing.T) {
	w := WRRWeights([]float64{0, 0}, 0.95)
	if math.Abs(w[0]-0.5) > 1e-9 || math.Abs(w[1]-0.5) > 1e-9 {
		t.Fatalf("no-demand weights should be uniform: %v", w)
	}
	if got := WRRWeights(nil, 0.95); len(got) != 0 {
		t.Fatalf("nil shares should give empty weights, got %v", got)
	}
}

func TestWRRWeightsBadEtaFallsBack(t *testing.T) {
	w1 := WRRWeights([]float64{0.5, 0.5}, -3)
	w2 := WRRWeights([]float64{0.5, 0.5}, 0.95)
	for k := range w1 {
		if math.Abs(w1[k]-w2[k]) > 1e-12 {
			t.Fatalf("bad eta should fall back to default: %v vs %v", w1, w2)
		}
	}
}

// TestWRRWeightsMatchSPQWaitingTimes is the §IV.B emulation property: the
// weights are proportional to each queue's SPQ service responsiveness
// ρ_k/W_k = (1−σ_{k−1})(1−σ_k), so the WRR schedule reproduces SPQ's
// steeply decreasing waiting-time profile while keeping every backlogged
// queue above zero.
func TestWRRWeightsMatchSPQWaitingTimes(t *testing.T) {
	shares := []float64{0.4, 0.3, 0.2, 0.1}
	eta := 0.9
	rho := make([]float64, len(shares))
	for k, s := range shares {
		rho[k] = eta * s
	}
	spq := SPQWaitingTimes(rho)

	// Unnormalized emulation weights φ_k = 1/W_k.
	phi := make([]float64, len(rho))
	sumPhi := 0.0
	for k := range rho {
		phi[k] = 1 / spq[k]
		sumPhi += phi[k]
	}
	w := WRRWeights(shares, eta)
	for k := range w {
		if math.Abs(w[k]-phi[k]/sumPhi) > 1e-9 {
			t.Fatalf("WRRWeights[%d] = %v, want %v (normalized 1/W)", k, w[k], phi[k]/sumPhi)
		}
	}
}

// TestStarvationWeights: the top backlogged queue owns η of the link; the
// reservation 1−η is split by inverse waiting time; empty queues get 0.
func TestStarvationWeights(t *testing.T) {
	shares := []float64{0.3, 0, 0.7, 0}
	eta := 0.9
	w := StarvationWeights(shares, eta)
	if w[1] != 0 || w[3] != 0 {
		t.Fatalf("empty queues must have zero weight: %v", w)
	}
	if w[0] < eta {
		t.Fatalf("top backlogged queue weight = %v, want >= %v", w[0], eta)
	}
	if w[2] <= 0 || w[2] > 1-eta {
		t.Fatalf("lower queue weight = %v, want in (0, %v]", w[2], 1-eta)
	}
	sum := w[0] + w[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	// Top queue need not be queue 0.
	w = StarvationWeights([]float64{0, 0, 0.5, 0.5}, eta)
	if w[2] < eta {
		t.Fatalf("queue 2 is the top backlogged queue, weight = %v", w[2])
	}
	// No demand: uniform.
	w = StarvationWeights([]float64{0, 0}, eta)
	if w[0] != 0.5 || w[1] != 0.5 {
		t.Fatalf("no-demand weights = %v, want uniform", w)
	}
	// Bad eta falls back to the default.
	if got := StarvationWeights([]float64{1, 1}, -1); got[0] < 0.9 {
		t.Fatalf("bad-eta fallback weights = %v", got)
	}
}

// TestWRRWeightsSteepProfile: when nearly all demand sits in the lowest
// queue, the top queue must still dominate the link (SPQ-like), with the
// bottom queue reduced to a trickle — the behaviour §IV.B describes.
func TestWRRWeightsSteepProfile(t *testing.T) {
	w := WRRWeights([]float64{0.1, 0, 0, 0.9}, 0.95)
	if w[0] < 0.85 {
		t.Fatalf("top-queue weight = %v, want > 0.85 (SPQ-like dominance)", w[0])
	}
	if w[3] <= 0 || w[3] > 0.15 {
		t.Fatalf("bottom-queue weight = %v, want a small positive trickle", w[3])
	}
}

// TestWRRWeightsQuick: for random shares, weights are a distribution and
// non-empty queues always get positive weight.
func TestWRRWeightsQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := int(n)%8 + 1
		shares := make([]float64, q)
		total := 0.0
		for k := range shares {
			shares[k] = rng.Float64()
			total += shares[k]
		}
		for k := range shares {
			shares[k] /= total
		}
		w := WRRWeights(shares, 0.95)
		sum := 0.0
		for k, x := range w {
			if shares[k] > 0 && x <= 0 {
				return false
			}
			if x < 0 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
