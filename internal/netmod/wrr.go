package netmod

// This file implements the paper's starvation mitigation (§IV.B): strict
// priority queuing is emulated with weighted round robin, with each queue's
// weight chosen so that the WRR queue reproduces the average waiting time
// the queue would see under SPQ. Low-priority queues therefore keep a small
// guaranteed share instead of starving.

// SPQWaitingTimes returns the normalized average waiting time of each
// priority queue under strict priority queuing, following the paper's
// queueing formula: with per-queue loads ρ_k (ρ_0 the highest priority),
//
//	W_0 = ρ_0 / (1 − ρ_0)
//	W_k = ρ_k / ((1 − ρ_0 − … − ρ_{k−1}) · (1 − ρ_0 − … − ρ_k))
//
// The caller must ensure Σρ < 1 (see WRRWeights, which scales demand shares
// by a target utilization η < 1). Queues with zero load have zero waiting
// time.
func SPQWaitingTimes(rho []float64) []float64 {
	w := make([]float64, len(rho))
	sigmaPrev := 0.0
	for k, r := range rho {
		if r < 0 {
			r = 0
		}
		sigma := sigmaPrev + r
		denom := (1 - sigmaPrev) * (1 - sigma)
		if denom <= 0 {
			// Overload: the queue (and all below it) would wait unboundedly.
			w[k] = 1e18
		} else {
			w[k] = r / denom
		}
		sigmaPrev = sigma
	}
	return w
}

// WRRWeights converts per-queue demand shares into WRR weights that emulate
// SPQ service order while preventing starvation. shares[k] is queue k's
// fraction of total offered load (Σ shares ≤ 1, e.g. the fraction of active
// flows in queue k); eta ∈ (0,1) is the assumed utilization, so
// ρ_k = eta·shares[k].
//
// Derivation: under SPQ queue k's waiting time is
// W_k = ρ_k / ((1−σ_{k−1})(1−σ_k)) with σ_k = ρ_0 + … + ρ_k. The emulation
// serves each backlogged queue inversely to how long SPQ would make it
// wait:
//
//	φ_k ∝ 1/W_k = (1 − σ_{k−1})(1 − σ_k) / ρ_k
//
// The top queue, whose SPQ wait is near zero, takes almost the whole link;
// each lower queue keeps a strictly positive but sharply smaller guarantee
// (bounded below through (1−σ_K) ≥ 1−η > 0), so low-priority traffic
// transmits "at a much lower rate than higher priority traffic" (§IV.B)
// instead of starving outright. Weights decrease strictly with k,
// preserving priority order; they are normalized to sum to 1 over non-empty
// queues, and empty queues get weight 0.
// StarvationWeights composes the final per-queue link shares used by the
// WRR emulation: the highest backlogged queue receives the utilization
// target η outright — reproducing SPQ's behaviour for the traffic that
// matters most — and the remaining 1−η is the starvation-mitigation
// reservation, distributed across backlogged queues proportional to their
// inverse SPQ waiting times (WRRWeights). The result is a distribution over
// non-empty queues in which low-priority traffic keeps a small guaranteed
// trickle, the property §IV.B introduces WRR for, at a bounded cost (≤ 1−η)
// to high-priority traffic — consistent with the paper's observation that
// pure-SPQ Stream edges out Gurita only on the smallest bursty jobs.
func StarvationWeights(shares []float64, eta float64) []float64 {
	return starvationWeightsInto(make([]float64, len(shares)), shares, eta)
}

// starvationWeightsInto is StarvationWeights writing into w (len(shares)),
// so the hot allocation path can reuse one buffer across rounds.
func starvationWeightsInto(w, shares []float64, eta float64) []float64 {
	if eta <= 0 || eta >= 1 {
		eta = 0.95
	}
	w = wrrWeightsInto(w, shares, eta)
	top := -1
	for k, s := range shares {
		if s > 0 {
			top = k
			break
		}
	}
	if top < 0 {
		return w // no demand: wrrWeightsInto already returned uniform
	}
	for k := range w {
		w[k] *= 1 - eta
	}
	w[top] += eta
	return w
}

func WRRWeights(shares []float64, eta float64) []float64 {
	return wrrWeightsInto(make([]float64, len(shares)), shares, eta)
}

// wrrWeightsInto is WRRWeights writing into weights (len(shares)).
func wrrWeightsInto(weights, shares []float64, eta float64) []float64 {
	if len(shares) == 0 {
		return weights
	}
	for k := range weights {
		weights[k] = 0
	}
	if eta <= 0 || eta >= 1 {
		eta = 0.95
	}
	sigmaPrev := 0.0
	sum := 0.0
	for k, s := range shares {
		if s < 0 {
			s = 0
		}
		rho := eta * s
		sigma := sigmaPrev + rho
		if s > 0 {
			weights[k] = (1 - sigmaPrev) * (1 - sigma) / rho
			sum += weights[k]
		}
		sigmaPrev = sigma
	}
	if sum == 0 {
		// No demand anywhere: split evenly so the result is still a
		// distribution.
		for k := range weights {
			weights[k] = 1 / float64(len(weights))
		}
		return weights
	}
	for k := range weights {
		weights[k] /= sum
	}
	return weights
}
