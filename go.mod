module gurita

go 1.22
