package gurita_test

import (
	"strings"
	"testing"

	gurita "gurita"
)

// tinyScale shrinks every experiment far enough to run in CI while still
// exercising the full pipeline (synthesize → graft → run 5 schedulers →
// aggregate → render).
func tinyScale() gurita.Scale {
	s := gurita.QuickScale()
	s.TraceCoflows = 10
	s.BurstyJobs = 12
	s.BurstSize = 6
	s.MaxSenders = 3
	s.MaxReducers = 2
	return s
}

func TestFig5PipelineTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheduler simulation")
	}
	ft, raw, err := gurita.Fig5Improvements(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Rows) != 4 {
		t.Fatalf("Fig5 rows = %d, want 4 scenarios", len(ft.Rows))
	}
	for _, scenario := range []string{"FB-t", "CD-t", "FB-b", "CD-b"} {
		per, ok := raw[scenario]
		if !ok {
			t.Fatalf("scenario %s missing", scenario)
		}
		for kind, v := range per {
			if v <= 0 {
				t.Fatalf("%s vs %s improvement = %v, want > 0", scenario, kind, v)
			}
		}
	}
	if !strings.Contains(ft.String(), "vs pfs") {
		t.Fatal("rendered table missing header")
	}
}

func TestFig6PipelineTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheduler simulation")
	}
	ft, per, err := gurita.Fig6TraceCategories(gurita.StructureFBTao, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Rows) == 0 {
		t.Fatal("Fig6 produced no category rows")
	}
	for _, kind := range []gurita.SchedulerKind{gurita.KindPFS, gurita.KindBaraat, gurita.KindStream, gurita.KindAalo} {
		if len(per[kind]) == 0 {
			t.Fatalf("no per-category improvements vs %s", kind)
		}
	}
}

func TestFig7PipelineTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheduler simulation")
	}
	ft, per, err := gurita.Fig7BurstyCategories(gurita.StructureTPCDS, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Rows) == 0 || len(per) == 0 {
		t.Fatal("Fig7 empty")
	}
}

func TestFig8PipelineTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheduler simulation")
	}
	ft, per, err := gurita.Fig8GuritaPlus(gurita.StructureFBTao, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Rows) == 0 {
		t.Fatal("Fig8 empty")
	}
	for c, v := range per {
		// The oracle and the practical scheduler must be in the same
		// ballpark even at tiny scale.
		if v < 0.3 || v > 3 {
			t.Fatalf("category %v oracle ratio = %v, implausible", c, v)
		}
	}
}

func TestMultiTrialAveraging(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheduler simulation")
	}
	s := tinyScale()
	s.Trials = 2
	_, raw, err := gurita.Fig5Improvements(s)
	if err != nil {
		t.Fatal(err)
	}
	// Averaged values must differ from the single-seed run (different
	// workloads were mixed in) while staying positive.
	s1 := tinyScale()
	_, raw1, err := gurita.Fig5Improvements(s1)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for scenario := range raw {
		for k, v := range raw[scenario] {
			if v <= 0 {
				t.Fatalf("trial-averaged improvement %s/%s = %v", scenario, k, v)
			}
			if v != raw1[scenario][k] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("averaging over two seeds produced identical values — trials not applied")
	}
}

func TestFigureTableCSV(t *testing.T) {
	ft := gurita.FigureTable{
		Title:  "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "with,comma"}, {"2", `with"quote`}},
	}
	csv := ft.CSV()
	want := "a,b\n1,\"with,comma\"\n2,\"with\"\"quote\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestScenarioBuildersValidate(t *testing.T) {
	bad := tinyScale()
	bad.FatTreeK = 3 // invalid pod count
	if _, err := gurita.TraceScenario(gurita.StructureFBTao, bad); err == nil {
		t.Fatal("bad FatTreeK should fail")
	}
	bad = tinyScale()
	bad.BurstyFatTreeK = 5
	if _, err := gurita.BurstyScenario(gurita.StructureFBTao, bad); err == nil {
		t.Fatal("bad BurstyFatTreeK should fail")
	}
}

func TestNewFabricsFacade(t *testing.T) {
	ft, err := gurita.FatTreeOversub(4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ft.String(), "oversubscribed") {
		t.Fatalf("stringer = %q", ft.String())
	}
	ls, err := gurita.LeafSpine(4, 2, 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ls.NumServers() != 32 {
		t.Fatalf("leaf-spine servers = %d", ls.NumServers())
	}
	// Both fabrics drain a workload end to end.
	jobs, err := gurita.GenerateWorkload(gurita.WorkloadConfig{
		NumJobs: 6, Seed: 2, Servers: 16,
		CategoryWeights: [gurita.NumCategories]float64{1, 0, 0, 0, 0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []*gurita.Topology{ft, ls} {
		res, err := (gurita.Scenario{Topology: tp, Jobs: jobs}).Run(gurita.KindGurita)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Jobs) != 6 {
			t.Fatalf("%v drained %d/6", tp, len(res.Jobs))
		}
	}
}

func TestTaskLevelDependenciesFacade(t *testing.T) {
	tp, _ := gurita.BigSwitch(8, 1e6)
	var cid gurita.CoflowID
	var fid gurita.FlowID
	b := gurita.NewJobBuilder(1, 0, &cid, &fid)
	c1 := b.AddCoflow(
		gurita.FlowSpec{Src: 0, Dst: 2, Size: 1e5},
		gurita.FlowSpec{Src: 1, Dst: 3, Size: 9e5},
	)
	c2 := b.AddCoflow(
		gurita.FlowSpec{Src: 2, Dst: 4, Size: 5e5},
		gurita.FlowSpec{Src: 3, Dst: 5, Size: 5e5},
	)
	b.Depends(c2, c1)
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc := gurita.Scenario{Topology: tp, Jobs: []*gurita.Job{j}, TaskLevelDependencies: true}
	res, err := sc.Run(gurita.KindPFS)
	if err != nil {
		t.Fatal(err)
	}
	coflowLevel := gurita.Scenario{Topology: tp, Jobs: []*gurita.Job{j}}
	// NOTE: jobs are static descriptions, safe to reuse across scenarios.
	res2, err := coflowLevel.Run(gurita.KindPFS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].JCT > res2.Jobs[0].JCT+1e-9 {
		t.Fatalf("task-level JCT %v worse than coflow-level %v on a pipelineable job",
			res.Jobs[0].JCT, res2.Jobs[0].JCT)
	}
}

func TestVarysFacade(t *testing.T) {
	s, err := gurita.NewScheduler(gurita.KindVarys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "varys" {
		t.Fatalf("name = %q", s.Name())
	}
	if len(gurita.AllKinds()) != 8 {
		t.Fatalf("AllKinds = %d, want 8", len(gurita.AllKinds()))
	}
}

func TestResultExtrasFacade(t *testing.T) {
	tp, _ := gurita.BigSwitch(4, 1e6)
	jobs, err := gurita.GenerateWorkload(gurita.WorkloadConfig{
		NumJobs: 3, Seed: 9, Servers: 4,
		CategoryWeights: [gurita.NumCategories]float64{1, 0, 0, 0, 0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (gurita.Scenario{Topology: tp, Jobs: jobs}).Run(gurita.KindPFS)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, j := range jobs {
		want += j.TotalBytes()
	}
	if res.TotalBytes != want {
		t.Fatalf("TotalBytes = %d, want %d", res.TotalBytes, want)
	}
	if res.MaxActiveFlows < 1 {
		t.Fatal("MaxActiveFlows not tracked")
	}
	if res.AvgCCT() <= 0 {
		t.Fatal("AvgCCT not computed")
	}
}
