// Motivation (paper Figure 2 and §I): a job that ships most of its bytes in
// stage 1 and almost nothing afterwards ("on-and-off" job) is punished by
// total-bytes-sent schedulers — its tiny later stages inherit the demotion
// earned by stage 1. Gurita's per-stage blocking effect restores their
// priority.
//
// This example builds that situation concretely and runs it under Stream
// (TBS-based) and Gurita, printing the multi-stage job's completion time
// under each.
package main

import (
	"fmt"
	"log"

	gurita "gurita"
)

func main() {
	tp, err := gurita.BigSwitch(16, 1.25e9)
	if err != nil {
		log.Fatal(err)
	}

	var cid gurita.CoflowID
	var fid gurita.FlowID

	// Job A: a small (category I) 4-stage chain — 15 MB per stage, 60 MB
	// total, every stage leaving server 1. Its TBS crosses the first
	// demotion threshold (10 MB) during stage 1, so a TBS scheduler pins
	// stages 2-4 to a lower queue even though each is tiny.
	a := gurita.NewJobBuilder(1, 0.5, &cid, &fid)
	prev := -1
	for st := 0; st < 4; st++ {
		h := a.AddCoflow(gurita.FlowSpec{
			Src:  1,
			Dst:  gurita.ServerID(st + 4),
			Size: 15e6,
		})
		if prev >= 0 {
			a.Depends(h, prev)
		}
		prev = h
	}
	jobA, err := a.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Background: a steady stream of 90 MB jobs also leaving server 1. Each
	// spends most of its bytes demoted to queue 1, exactly where a TBS
	// scheduler parks job A's later stages — so under Stream, A's tiny
	// stages queue behind them, while under Gurita every new stage of A
	// re-enters at the highest priority and slips past.
	jobs := []*gurita.Job{jobA}
	for i := 0; i < 60; i++ {
		b := gurita.NewJobBuilder(gurita.JobID(2+i), float64(i)*0.080, &cid, &fid)
		b.AddCoflow(gurita.FlowSpec{
			Src:  1,
			Dst:  gurita.ServerID(8 + i%8),
			Size: 90e6,
		})
		j, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	sc := gurita.Scenario{Topology: tp, Jobs: jobs}
	stream, err := sc.Run(gurita.KindStream)
	if err != nil {
		log.Fatal(err)
	}
	g, err := sc.Run(gurita.KindGurita)
	if err != nil {
		log.Fatal(err)
	}

	jctOf := func(r *gurita.Result, id gurita.JobID) float64 {
		for _, j := range r.Jobs {
			if j.JobID == id {
				return j.JCT
			}
		}
		return 0
	}

	fmt.Println("small multi-stage job A (4 stages x 15 MB) vs TBS demotion")
	fmt.Printf("  JCT under Stream (TBS-based): %7.3f s\n", jctOf(stream, 1))
	fmt.Printf("  JCT under Gurita (per-stage): %7.3f s\n", jctOf(g, 1))
	fmt.Printf("  speedup: %.2fx\n\n", jctOf(stream, 1)/jctOf(g, 1))

	// The paper's own Figure 2 arithmetic, regenerated:
	ft, tbs, perStage := gurita.Fig2Motivation()
	fmt.Println(ft)
	fmt.Printf("average JCT: %.2f (TBS) vs %.2f (per-stage)\n", tbs, perStage)
}
