// Bursty: the paper's large-scale scenario (§V, Figure 7) in miniature —
// jobs arriving 2 µs apart in bursts, where scheduling matters most.
// Compares all six schedulers on the identical workload and prints the
// per-category improvement of Gurita over each baseline.
package main

import (
	"fmt"
	"log"

	gurita "gurita"
)

func main() {
	tp, err := gurita.FatTree(8, 0)
	if err != nil {
		log.Fatal(err)
	}

	jobs, err := gurita.GenerateWorkload(gurita.WorkloadConfig{
		NumJobs:   80,
		Seed:      3,
		Servers:   tp.NumServers(),
		Structure: gurita.StructureFBTao,
		Arrival: &gurita.BurstyArrivals{
			BurstSize: 20,
			IntraGap:  2e-6, // the paper's 2 µs bursts
			InterGap:  5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	sc := gurita.Scenario{Topology: tp, Jobs: jobs}
	results, err := sc.RunAll()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bursty workload: %d FB-Tao jobs in bursts of 20, 2 µs apart, on %v\n\n", len(jobs), tp)
	fmt.Println("average JCT per scheduler:")
	for _, k := range gurita.AllKinds() {
		fmt.Printf("  %-8s %8.3f s\n", k, gurita.Summarize(gurita.JCTs(results[k])).Mean)
	}

	fmt.Println("\nGurita's improvement factor (>1 means Gurita faster):")
	g := results[gurita.KindGurita]
	header := []string{"category", "vs pfs", "vs baraat", "vs stream", "vs aalo"}
	baselines := []gurita.SchedulerKind{gurita.KindPFS, gurita.KindBaraat, gurita.KindStream, gurita.KindAalo}
	per := make(map[gurita.SchedulerKind]map[gurita.Category]float64)
	for _, k := range baselines {
		per[k] = gurita.ImprovementByCategory(results[k], g)
	}
	var rows [][]string
	for c := gurita.CategoryI; c <= gurita.CategoryVII; c++ {
		row := []string{c.String()}
		any := false
		for _, k := range baselines {
			if v, ok := per[k][c]; ok {
				row = append(row, fmt.Sprintf("%.2f", v))
				any = true
			} else {
				row = append(row, "-")
			}
		}
		if any {
			rows = append(rows, row)
		}
	}
	fmt.Print(gurita.RenderTable(header, rows))
}
