// Multistage: build the production job shapes the paper analyzes (chain,
// W, inverted-V, TPC-DS, FB-Tao) with the JobBuilder, inspect their stages
// and critical paths, and watch how a job's priority evolves per stage
// under Gurita.
package main

import (
	"fmt"
	"log"
	"sort"

	gurita "gurita"
)

func main() {
	// Build a W-shaped job by hand: two outputs drawing on three leaf
	// transfers, the middle leaf shared — with a deliberately heavy left
	// branch so only it is critical.
	var cid gurita.CoflowID
	var fid gurita.FlowID
	b := gurita.NewJobBuilder(1, 0, &cid, &fid)
	l0 := b.AddCoflow(gurita.FlowSpec{Src: 0, Dst: 8, Size: 800e6}) // heavy
	l1 := b.AddCoflow(gurita.FlowSpec{Src: 1, Dst: 9, Size: 50e6})
	l2 := b.AddCoflow(gurita.FlowSpec{Src: 2, Dst: 10, Size: 50e6})
	r0 := b.AddCoflow(
		gurita.FlowSpec{Src: 8, Dst: 12, Size: 100e6},
		gurita.FlowSpec{Src: 9, Dst: 12, Size: 20e6},
	)
	r1 := b.AddCoflow(
		gurita.FlowSpec{Src: 9, Dst: 13, Size: 20e6},
		gurita.FlowSpec{Src: 10, Dst: 13, Size: 20e6},
	)
	b.Depends(r0, l0)
	b.Depends(r0, l1)
	b.Depends(r1, l1)
	b.Depends(r1, l2)
	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("W-shaped job: %v\n", job)
	fmt.Printf("  stages: %d, leaves: %d, roots (outputs): %d\n",
		job.NumStages, len(job.Leaves()), len(job.Roots()))

	// Critical path analysis at 10G processing rate (CCT ≈ L/R weights).
	const rate = 1.25e9
	fmt.Printf("  critical path length: %.3f s\n", gurita.CriticalPathLength(job, rate))
	crit := gurita.CriticalCoflows(job, rate)
	var critIDs []int
	for id, on := range crit {
		if on {
			critIDs = append(critIDs, int(id))
		}
	}
	sort.Ints(critIDs)
	fmt.Printf("  coflows on a critical path: %v (the heavy left branch)\n\n", critIDs)

	// Run the job against background traffic and report per-stage CCTs.
	tp, err := gurita.BigSwitch(16, rate)
	if err != nil {
		log.Fatal(err)
	}
	bg := gurita.NewJobBuilder(2, 0, &cid, &fid)
	bg.AddCoflow(gurita.FlowSpec{Src: 0, Dst: 14, Size: 2e9}) // shares l0's uplink
	bgJob, err := bg.Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := gurita.Scenario{Topology: tp, Jobs: []*gurita.Job{job, bgJob}}.Run(gurita.KindGurita)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-coflow completion under Gurita (with a 2 GB background elephant):")
	rows := make([][]string, 0, len(res.Coflows))
	for _, c := range res.Coflows {
		if c.JobID != 1 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.CoflowID),
			fmt.Sprintf("%d", c.Stage),
			fmt.Sprintf("%.3f", c.Started),
			fmt.Sprintf("%.3f", c.Finished),
			fmt.Sprintf("%.3f", c.CCT),
			fmt.Sprintf("%v", crit[c.CoflowID]),
		})
	}
	fmt.Print(gurita.RenderTable(
		[]string{"coflow", "stage", "start", "finish", "CCT", "critical"}, rows))

	for _, j := range res.Jobs {
		if j.JobID == 1 {
			fmt.Printf("\njob completion time: %.3f s\n", j.JCT)
		}
	}
}
