// Quickstart: build the paper's 8-pod fabric, synthesize a small
// Facebook-like workload under the TPC-DS DAG structure, and compare Gurita
// against per-flow fair sharing on the identical workload.
package main

import (
	"fmt"
	"log"

	gurita "gurita"
)

func main() {
	// The evaluation fabric: 8-pod FatTree, 128 servers, 80 switches, 10G.
	tp, err := gurita.FatTree(8, 0)
	if err != nil {
		log.Fatal(err)
	}

	// A Facebook-trace-shaped workload grafted with TPC-DS query-42 DAGs.
	specs := gurita.SynthesizeTrace(60, 150, 1)
	jobs, err := gurita.GraftTrace(specs, 150, gurita.GraftConfig{
		Structure:   gurita.StructureTPCDS,
		Servers:     tp.NumServers(),
		Seed:        1,
		MaxSenders:  6,
		MaxReducers: 3,
		TimeScale:   0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	sc := gurita.Scenario{Topology: tp, Jobs: jobs}
	results, err := sc.RunAll(gurita.KindPFS, gurita.KindGurita)
	if err != nil {
		log.Fatal(err)
	}

	pfs, g := results[gurita.KindPFS], results[gurita.KindGurita]
	fmt.Printf("fabric:   %v\n", tp)
	fmt.Printf("workload: %d multi-stage jobs (%d stages each)\n\n", len(jobs), jobs[0].NumStages)
	fmt.Printf("PFS     avg JCT: %8.3f s\n", gurita.Summarize(gurita.JCTs(pfs)).Mean)
	fmt.Printf("Gurita  avg JCT: %8.3f s\n", gurita.Summarize(gurita.JCTs(g)).Mean)
	fmt.Printf("improvement:     %8.2fx\n\n", gurita.Improvement(pfs, g))

	fmt.Println("per-category improvement (Table 1 size classes):")
	per := gurita.ImprovementByCategory(pfs, g)
	for c := gurita.CategoryI; c <= gurita.CategoryVII; c++ {
		if v, ok := per[c]; ok {
			fmt.Printf("  %-4s %.2fx\n", c, v)
		}
	}
}
