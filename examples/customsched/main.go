// Customsched: implement a new scheduling policy against the public
// Scheduler interface and race it against the built-ins on one workload.
//
// The policy implemented here is SJF-by-observed-bytes: a job's flows are
// demoted as the job's observed total bytes grow — a simple TBS scheme,
// which is exactly the class of scheduler the paper argues is blind to
// multi-stage structure. Running it against Gurita shows the difference on
// a workload with front-loaded multi-stage jobs.
package main

import (
	"fmt"
	"log"

	gurita "gurita"
)

// sjf is a least-attained-service scheduler at job granularity: queue level
// grows with the job's observed bytes (thresholds at 10 MB, 100 MB, 1 GB).
// It only reads observable state (BytesSent), like a deployable scheme.
type sjf struct {
	thresholds []float64
}

func (s *sjf) Name() string                         { return "sjf-tbs" }
func (s *sjf) Init(gurita.SchedulerEnv)             {}
func (s *sjf) OnJobArrival(*gurita.JobState)        {}
func (s *sjf) OnCoflowStart(*gurita.CoflowState)    {}
func (s *sjf) OnCoflowComplete(*gurita.CoflowState) {}
func (s *sjf) OnJobComplete(*gurita.JobState)       {}

// AssignQueues keys on live byte counters, so targets can move at any
// event: assign newcomers, then sweep with compare-and-set and report any
// pre-existing flow whose queue changed.
func (s *sjf) AssignQueues(_ float64, flows, added, dirty []*gurita.FlowState) []*gurita.FlowState {
	for _, f := range added {
		f.SetQueue(s.targetQueue(f))
	}
	for _, f := range flows {
		if q := s.targetQueue(f); q != f.Queue() {
			f.SetQueue(q)
			dirty = append(dirty, f)
		}
	}
	return dirty
}

func (s *sjf) targetQueue(f *gurita.FlowState) int {
	q := 0
	for _, t := range s.thresholds {
		if f.Coflow.Job.BytesSent > t {
			q++
		}
	}
	return q
}

func main() {
	tp, err := gurita.FatTree(8, 0)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := gurita.GenerateWorkload(gurita.WorkloadConfig{
		NumJobs:   60,
		Seed:      11,
		Servers:   tp.NumServers(),
		Structure: gurita.StructureMixed,
		Arrival:   gurita.PoissonArrivals{Rate: 10},
		// Categories I-IV keep the example fast (multi-TB tail jobs would
		// stretch simulated time to hours).
		CategoryWeights:     [gurita.NumCategories]float64{0.5, 0.3, 0.15, 0.05, 0, 0, 0},
		FractionFrontLoaded: 0.5, // many on-and-off jobs: TBS's blind spot
	})
	if err != nil {
		log.Fatal(err)
	}

	sc := gurita.Scenario{Topology: tp, Jobs: jobs}

	mine, err := sc.RunWith(&sjf{thresholds: []float64{10e6, 100e6, 1e9}}, false)
	if err != nil {
		log.Fatal(err)
	}
	g, err := sc.Run(gurita.KindGurita)
	if err != nil {
		log.Fatal(err)
	}
	pfs, err := sc.Run(gurita.KindPFS)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %d mixed-shape jobs, 50%% front-loaded, on %v\n\n", len(jobs), tp)
	fmt.Printf("%-10s avg JCT %8.3f s\n", mine.Scheduler, gurita.Summarize(gurita.JCTs(mine)).Mean)
	fmt.Printf("%-10s avg JCT %8.3f s\n", g.Scheduler, gurita.Summarize(gurita.JCTs(g)).Mean)
	fmt.Printf("%-10s avg JCT %8.3f s\n\n", pfs.Scheduler, gurita.Summarize(gurita.JCTs(pfs)).Mean)
	fmt.Printf("Gurita vs your scheduler: %.2fx\n", gurita.Improvement(mine, g))
	fmt.Printf("Gurita vs PFS:            %.2fx\n", gurita.Improvement(pfs, g))
}
