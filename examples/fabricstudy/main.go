// Fabricstudy: how fabric design changes what scheduling is worth. Runs the
// same trace-shaped workload over a non-blocking FatTree, oversubscribed
// FatTrees (2:1, 4:1), and a leaf-spine fabric, reporting Gurita's margin
// over per-flow fair sharing and the measured fabric utilization on each.
//
// The punchline mirrors production experience: the more a fabric tapers,
// the more scheduling matters.
package main

import (
	"fmt"
	"log"

	gurita "gurita"
)

func main() {
	type fabric struct {
		name  string
		build func() (*gurita.Topology, error)
	}
	fabrics := []fabric{
		{"fattree 1:1", func() (*gurita.Topology, error) { return gurita.FatTree(8, 0) }},
		{"fattree 2:1", func() (*gurita.Topology, error) { return gurita.FatTreeOversub(8, 0, 2) }},
		{"fattree 4:1", func() (*gurita.Topology, error) { return gurita.FatTreeOversub(8, 0, 4) }},
		{"leaf-spine 4:1", func() (*gurita.Topology, error) {
			// 8 leaves × 16 hosts, 4 spines at host speed → 16:4 = 4:1 taper.
			return gurita.LeafSpine(8, 4, 16, 0, 0)
		}},
	}

	// One workload, placed over the common 128-server domain.
	specs := gurita.SynthesizeTrace(80, 150, 7)
	rows := make([][]string, 0, len(fabrics))
	for _, f := range fabrics {
		tp, err := f.build()
		if err != nil {
			log.Fatal(err)
		}
		jobs, err := gurita.GraftTrace(specs, 150, gurita.GraftConfig{
			Structure:   gurita.StructureTPCDS,
			Servers:     tp.NumServers(),
			Seed:        7,
			MaxSenders:  6,
			MaxReducers: 3,
			TimeScale:   0.1,
		})
		if err != nil {
			log.Fatal(err)
		}

		uc := gurita.NewUtilizationCollector(tp)
		sc := gurita.Scenario{Topology: tp, Jobs: jobs, Probe: uc.Probe}
		pfs, err := sc.Run(gurita.KindPFS)
		if err != nil {
			log.Fatal(err)
		}
		g, err := sc.Run(gurita.KindGurita)
		if err != nil {
			log.Fatal(err)
		}

		rows = append(rows, []string{
			f.name,
			fmt.Sprintf("%.2fx", gurita.PairedImprovement(pfs, g)),
			fmt.Sprintf("%.1f%%", 100*uc.FabricUtilization()),
			fmt.Sprintf("%.0f%%", 100*uc.PeakLinkUtilization()),
		})
	}
	fmt.Println("same workload, four fabrics: what scheduling is worth vs PFS")
	fmt.Print(gurita.RenderTable(
		[]string{"fabric", "gurita vs pfs", "avg fabric util", "peak link"}, rows))
}
