// Command guritachaos is the kill -9 harness for multi-process campaigns:
// it spawns a fleet of guritaworker processes against one shared cache,
// SIGKILLs and SIGSTOPs them on a seeded schedule while they fight over the
// grid, and then audits the wreckage. The audit is the multi-process
// contract stated as assertions:
//
//   - the fleet (plus reclaims) finishes the whole grid, and every trial's
//     result bytes are identical to a serial in-process run of the same grid;
//   - no lease or poison files survive and the quarantine directory is empty
//     (crashes leave garbage, the protocol cleans all of it up);
//   - the merged worker manifests are self-consistent: the retry, reclaim,
//     and execution tallies in the stats columns equal the obs counters the
//     workers snapshotted alongside them.
//
// With -http-cache the same contract is tested over the remote-cache path:
// the harness spawns a guritad process as the cache server, points the fleet
// at it with -cache-url (workers share nothing but the URL), and adds the
// daemon itself to the kill schedule — SIGKILL the cache server mid-campaign,
// restart it on the same port, and the workers must ride out the outage on
// retries and still converge byte-identically. The audit gains two remote
// assertions: GET /v1/cache/leases must list zero surviving leases, and the
// daemon must drain cleanly (exit 0) on SIGTERM after the fleet is done.
//
// The schedule is deterministic in -seed (modulo OS scheduling, which is the
// point: the chaos is real). Exit status 0 means every assertion held.
//
// Usage:
//
//	go build -o /tmp/bin ./cmd/guritaworker ./cmd/guritachaos
//	/tmp/bin/guritachaos -workers 3 -kills 2 -stops 1 -seed 7
//
//	go build -o /tmp/bin ./cmd/guritaworker ./cmd/guritad ./cmd/guritachaos
//	/tmp/bin/guritachaos -http-cache -workers 3 -kills 2 -daemon-kills 1
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	gurita "gurita"
	"gurita/internal/metrics"
	"gurita/internal/obs"
	"gurita/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "guritachaos: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workers   = flag.Int("workers", 3, "worker processes to keep in the fleet")
		parallel  = flag.Int("parallel", 2, "per-worker pool size")
		kills     = flag.Int("kills", 2, "SIGKILLs to deliver (each killed worker is respawned under a fresh id)")
		stops     = flag.Int("stops", 1, "SIGSTOP/SIGCONT pauses to deliver, each longer than the lease TTL")
		seed      = flag.Int64("seed", 1, "chaos-schedule seed")
		leaseTTL  = flag.Duration("lease-ttl", time.Second, "worker lease TTL (short, so reclaims happen within the run)")
		workerBin = flag.String("worker-bin", "", "guritaworker binary (default: next to this binary, then $PATH)")
		cacheDir  = flag.String("cache", "", "shared cache directory (default: a temp dir, removed when the run passes)")

		httpCache   = flag.Bool("http-cache", false, "run the fleet against a guritad cache server over -cache-url instead of a shared directory")
		daemonBin   = flag.String("daemon-bin", "", "guritad binary for -http-cache (default: next to this binary, then $PATH)")
		daemonKills = flag.Int("daemon-kills", 1, "SIGKILL+restart cycles for the cache daemon (only with -http-cache)")
		schedds     = flag.String("schedulers", "gurita,pfs", "comma-separated schedulers in the built-in grid")
		seeds       = flag.Int("seeds", 3, "workload seeds per scheduler in the built-in grid")
		jobs        = flag.Int("jobs", 30, "coflows per trial in the built-in grid")
		timeout     = flag.Duration("timeout", 3*time.Minute, "overall harness deadline")
	)
	flag.Parse()
	if *workers < 2 {
		return fmt.Errorf("-workers must be >= 2 (chaos needs survivors), got %d", *workers)
	}
	if *daemonKills < 0 {
		return fmt.Errorf("-daemon-kills must be >= 0, got %d", *daemonKills)
	}
	if !*httpCache && *daemonBin != "" {
		return fmt.Errorf("-daemon-bin only makes sense with -http-cache")
	}

	bin, err := resolveBin(*workerBin, "guritaworker")
	if err != nil {
		return err
	}

	work, err := os.MkdirTemp("", "guritachaos-")
	if err != nil {
		return err
	}
	cache := *cacheDir
	if cache == "" {
		cache = filepath.Join(work, "cache")
	}
	if err := os.MkdirAll(cache, 0o755); err != nil {
		return err
	}

	// The built-in grid: small enough to finish in seconds, large enough
	// that kills land mid-flight.
	var specs []gurita.TrialSpec
	for _, name := range strings.Split(*schedds, ",") {
		for s := 1; s <= *seeds; s++ {
			specs = append(specs, gurita.TrialSpec{
				Scheduler: gurita.SchedulerKind(strings.TrimSpace(name)),
				Scenario:  gurita.CampaignTrace,
				Structure: gurita.StructureFBTao,
				Scale: gurita.Scale{
					Seed: int64(s), FatTreeK: 4, TraceCoflows: *jobs,
					MaxSenders: 6, MaxReducers: 3, TraceTimeScale: 0.1,
				},
				Queues: 4,
			})
		}
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("grid trial %d: %w", i, err)
		}
	}
	gridPath := filepath.Join(work, "grid.json")
	gridJSON, err := json.MarshalIndent(specs, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(gridPath, gridJSON, 0o644); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Serial in-process reference: the bytes every trial must reproduce.
	fmt.Fprintf(os.Stderr, "guritachaos: reference run (%d trials, serial)\n", len(specs))
	reference, err := renderResults(ctx, specs, gurita.CampaignOptions{Workers: 1})
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	// With -http-cache the cache is a guritad process; its disk is the same
	// cache dir, so the post-run filesystem audit applies unchanged.
	var cacheSrv *daemon
	if *httpCache {
		dbin, err := resolveBin(*daemonBin, "guritad")
		if err != nil {
			return err
		}
		cacheSrv = &daemon{bin: dbin, cache: cache, work: work, ttl: *leaseTTL}
		if err := cacheSrv.start(ctx); err != nil {
			return err
		}
		defer cacheSrv.killNow()
		fmt.Fprintf(os.Stderr, "guritachaos: cache daemon serving %s\n", cacheSrv.url())
	}

	// Spawn the fleet and run the seeded chaos schedule against it.
	fleet := &fleet{
		bin: bin, grid: gridPath, cache: cache,
		parallel: *parallel, ttl: *leaseTTL,
	}
	if *httpCache {
		fleet.cacheURL = cacheSrv.url()
	}
	for i := 0; i < *workers; i++ {
		if err := fleet.spawn(); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	killed, stopped, dkilled := 0, 0, 0
	wantDKills := 0
	if *httpCache {
		wantDKills = *daemonKills
	}
	// The first kill lands fast, before a small grid can drain — the
	// harness's one guarantee is that at least one worker actually dies
	// mid-campaign.
	time.Sleep(100*time.Millisecond + time.Duration(rng.Intn(100))*time.Millisecond)
	const (
		actKillWorker = iota
		actStopWorker
		actKillDaemon
	)
	for killed < *kills || stopped < *stops || dkilled < wantDKills {
		if ctx.Err() != nil {
			fleet.killAll()
			return fmt.Errorf("chaos schedule overran -timeout %v", *timeout)
		}
		var acts []int
		if killed < *kills {
			acts = append(acts, actKillWorker)
		}
		if stopped < *stops {
			acts = append(acts, actStopWorker)
		}
		if dkilled < wantDKills {
			acts = append(acts, actKillDaemon)
		}
		switch acts[rng.Intn(len(acts))] {
		case actKillWorker:
			id, err := fleet.killRandom(rng)
			if err != nil {
				return err
			}
			killed++
			fmt.Fprintf(os.Stderr, "guritachaos: SIGKILL %s (%d/%d), respawning\n", id, killed, *kills)
			if err := fleet.spawn(); err != nil {
				return err
			}
		case actStopWorker:
			id, err := fleet.stopRandom(rng, *leaseTTL+(*leaseTTL)/2)
			if err != nil {
				return err
			}
			stopped++
			fmt.Fprintf(os.Stderr, "guritachaos: SIGSTOP/SIGCONT %s (%d/%d)\n", id, stopped, *stops)
		case actKillDaemon:
			if err := cacheSrv.kill(); err != nil {
				return err
			}
			dkilled++
			fmt.Fprintf(os.Stderr, "guritachaos: SIGKILL cache daemon (%d/%d), restarting on %s\n",
				dkilled, wantDKills, cacheSrv.addr)
			// Let the fleet hammer a dead address for a moment — the retry
			// path is the thing under test — then bring it back on the same
			// port with the same disk.
			time.Sleep(time.Duration(100+rng.Intn(200)) * time.Millisecond)
			if err := cacheSrv.start(ctx); err != nil {
				return err
			}
		}
		time.Sleep(time.Duration(150+rng.Intn(450)) * time.Millisecond)
	}
	if err := fleet.wait(ctx); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "guritachaos: fleet done (%d spawned, %d killed, %d paused, %d daemon kills)\n",
		fleet.spawned, killed, stopped, dkilled)

	// Verification pass: an in-process lease-mode campaign over the same
	// cache. It must see a fully populated cache, and it sweeps any stale
	// lease the schedule left behind. In -http-cache mode it goes through
	// the daemon like any other remote worker.
	reg := obs.NewSyncRegistry()
	vopts := gurita.CampaignOptions{Workers: 2}
	if *httpCache {
		vopts.CacheURL = cacheSrv.url()
		vopts.MultiProcess = &gurita.MultiProcessOptions{Owner: "chaos-verify", Registry: reg}
	} else {
		vopts.CacheDir = cache
		vopts.MultiProcess = &gurita.MultiProcessOptions{Owner: "chaos-verify", LeaseTTL: *leaseTTL, Registry: reg}
	}
	verified, err := renderResults(ctx, specs, vopts)
	if err != nil {
		return fmt.Errorf("verification pass: %w", err)
	}

	// Assertion 1: exactly-once result bytes.
	for i := range specs {
		if !bytes.Equal(reference[i], verified[i]) {
			return fmt.Errorf("trial %d result bytes differ from the serial reference (%d vs %d bytes)",
				i, len(reference[i]), len(verified[i]))
		}
	}
	// Assertion 2: no leases, poisons, or quarantined entries survive. In
	// -http-cache mode the lease authority is the daemon's in-memory table,
	// so ask it directly — after a grace period in which any lease orphaned
	// in the schedule's final instant expires on the daemon's clock — and
	// then require a clean drain (a daemon that cannot shut down gracefully
	// after chaos failed the contract too).
	if *httpCache {
		time.Sleep(*leaseTTL + *leaseTTL/2)
		left, err := cacheSrv.listLeases()
		if err != nil {
			return err
		}
		if len(left) != 0 {
			return fmt.Errorf("daemon still holds leases: %v", left)
		}
		if err := cacheSrv.stop(); err != nil {
			return fmt.Errorf("cache daemon graceful stop: %w", err)
		}
	}
	if left := globNames(filepath.Join(cache, runner.LeaseSubdir), "*"); len(left) != 0 {
		return fmt.Errorf("lease files left behind: %v", left)
	}
	if q := globNames(filepath.Join(cache, runner.QuarantineDir), "*"); len(q) != 0 {
		return fmt.Errorf("quarantined cache entries: %v", q)
	}
	// Assertion 3: the merged manifests are self-consistent — stats columns
	// equal the counters snapshotted next to them.
	shards, err := runner.LoadWorkerManifests(cache, metrics.WorkerManifestSchema, "")
	if err != nil {
		return err
	}
	// Shards exist only for workers that finished; at minimum the survivors
	// and the verify pass wrote one each.
	if len(shards) < 2 {
		return fmt.Errorf("only %d manifest shards found, want >= 2", len(shards))
	}
	merged, err := runner.MergeWorkerManifests(shards)
	if err != nil {
		return err
	}
	for col, want := range map[string]int{
		"runner.trials.executed": merged.Executed,
		"runner.trials.retried":  merged.Retries,
		"lease.reclaimed":        merged.Reclaims,
	} {
		if got := merged.Counters[col]; got != int64(want) {
			return fmt.Errorf("merged manifest disagrees with obs counters: %s = %d, stats column = %d", col, got, want)
		}
	}
	if len(merged.Failures) != 0 {
		return fmt.Errorf("healthy grid degraded: %+v", merged.Failures)
	}
	if merged.Executed+merged.CacheHits+merged.DedupHits < len(specs) {
		return fmt.Errorf("accounting hole: %d trials but executed+cache+dedup = %d",
			len(specs), merged.Executed+merged.CacheHits+merged.DedupHits)
	}

	mode := "shared-dir cache"
	if *httpCache {
		mode = fmt.Sprintf("http cache, %d daemon kills", dkilled)
	}
	fmt.Printf("guritachaos: PASS — %d trials, %d workers spawned, %d SIGKILLed, %d paused (%s); executed %d, reclaims %d, retries %d, byte-identical\n",
		len(specs), fleet.spawned, killed, stopped, mode, merged.Executed, merged.Reclaims, merged.Retries)
	if *cacheDir == "" {
		os.RemoveAll(work)
	}
	return nil
}

// renderResults runs the grid and renders every trial's result with the same
// writer guritasim -json uses, so byte comparison is end-to-end.
func renderResults(ctx context.Context, specs []gurita.TrialSpec, opts gurita.CampaignOptions) ([][]byte, error) {
	opts.IncludeCoflows = true
	results, _, err := gurita.RunCampaign(ctx, specs, opts)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(results))
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("trial %d produced no result", i)
		}
		var buf bytes.Buffer
		if err := gurita.WriteResultJSON(&buf, res, false); err != nil {
			return nil, err
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

// fleet manages the worker processes under chaos. With cacheURL set the
// workers share the cache through a guritad daemon instead of the directory.
type fleet struct {
	bin, grid, cache string
	cacheURL         string
	parallel         int
	ttl              time.Duration
	spawned          int
	live             []*worker
}

type worker struct {
	id   string
	cmd  *exec.Cmd
	done chan error
}

func (f *fleet) spawn() error {
	f.spawned++
	id := fmt.Sprintf("chaos-w%d", f.spawned)
	args := []string{
		"-grid", f.grid,
		"-parallel", strconv.Itoa(f.parallel),
		"-worker-id", id, "-retries", "1", "-quiet",
	}
	if f.cacheURL != "" {
		// Remote mode: lease tuning is the daemon's (-cache-lease-ttl), so
		// the worker gets only the URL.
		args = append(args, "-cache-url", f.cacheURL)
	} else {
		args = append(args, "-cache", f.cache, "-lease-ttl", f.ttl.String())
	}
	cmd := exec.Command(f.bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawning %s: %w", id, err)
	}
	w := &worker{id: id, cmd: cmd, done: make(chan error, 1)}
	go func() { w.done <- cmd.Wait() }()
	f.live = append(f.live, w)
	return nil
}

// pick returns a random still-running worker, pruning finished ones.
func (f *fleet) pick(rng *rand.Rand) (*worker, error) {
	alive := f.live[:0]
	for _, w := range f.live {
		select {
		case err := <-w.done:
			if err != nil {
				return nil, fmt.Errorf("worker %s exited under chaos: %w", w.id, err)
			}
		default:
			alive = append(alive, w)
		}
	}
	f.live = alive
	if len(f.live) == 0 {
		return nil, nil
	}
	return f.live[rng.Intn(len(f.live))], nil
}

// killRandom SIGKILLs one live worker and reaps it. When the fleet already
// finished the grid there is nothing left to kill — that counts: the
// surviving schedule was too gentle, but the contract under test is the
// fleet's, not the schedule's.
func (f *fleet) killRandom(rng *rand.Rand) (string, error) {
	w, err := f.pick(rng)
	if err != nil || w == nil {
		return "(fleet already done)", err
	}
	if err := w.cmd.Process.Kill(); err != nil {
		return "", fmt.Errorf("killing %s: %w", w.id, err)
	}
	<-w.done // reap; a kill-induced error is the expected outcome
	for i, lw := range f.live {
		if lw == w {
			f.live = append(f.live[:i], f.live[i+1:]...)
			break
		}
	}
	return w.id, nil
}

// stopRandom SIGSTOPs one live worker for longer than the lease TTL, then
// SIGCONTs it — the worker wakes to find its leases reclaimed and must
// defer to its peers' results.
func (f *fleet) stopRandom(rng *rand.Rand, pause time.Duration) (string, error) {
	w, err := f.pick(rng)
	if err != nil || w == nil {
		return "(fleet already done)", err
	}
	if err := w.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		return "", fmt.Errorf("stopping %s: %w", w.id, err)
	}
	time.Sleep(pause)
	if err := w.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		return "", fmt.Errorf("resuming %s: %w", w.id, err)
	}
	return w.id, nil
}

// wait blocks until every live worker exits cleanly or ctx expires.
func (f *fleet) wait(ctx context.Context) error {
	for _, w := range f.live {
		select {
		case err := <-w.done:
			if err != nil {
				return fmt.Errorf("worker %s failed: %w", w.id, err)
			}
		case <-ctx.Done():
			f.killAll()
			return fmt.Errorf("workers still running at -timeout: %s", w.id)
		}
	}
	f.live = nil
	return nil
}

func (f *fleet) killAll() {
	for _, w := range f.live {
		_ = w.cmd.Process.Kill()
		<-w.done
	}
	f.live = nil
}

// daemon manages the guritad cache server under chaos: started once on a
// free port, SIGKILLed and restarted on the same port mid-schedule, and
// SIGTERMed at the end where it must drain cleanly.
type daemon struct {
	bin, cache, work string
	ttl              time.Duration
	addr             string // concrete host:port, fixed after the first start
	cmd              *exec.Cmd
	done             chan error
}

func (d *daemon) url() string { return "http://" + d.addr }

// start launches guritad and blocks until its cache API answers. The first
// start binds :0 and learns the port from -addr-file; restarts reuse it so
// the fleet's -cache-url stays valid across the kill.
func (d *daemon) start(ctx context.Context) error {
	listen := d.addr
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	addrFile := filepath.Join(d.work, "daemon-addr")
	os.Remove(addrFile)
	cmd := exec.Command(d.bin,
		"-listen", listen, "-addr-file", addrFile,
		"-cache", d.cache,
		"-cache-lease-ttl", d.ttl.String())
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawning guritad: %w", err)
	}
	d.cmd = cmd
	d.done = make(chan error, 1)
	go func() { d.done <- cmd.Wait() }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			d.addr = strings.TrimSpace(string(data))
			break
		}
		select {
		case err := <-d.done:
			return fmt.Errorf("guritad exited before serving: %v", err)
		default:
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			d.killNow()
			return errors.New("guritad did not publish its address in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for {
		resp, err := http.Get(d.url() + "/v1/cache/len")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			d.killNow()
			return errors.New("guritad cache API did not come up in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon and reaps it — the chaos event.
func (d *daemon) kill() error {
	if err := d.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("killing guritad: %w", err)
	}
	<-d.done // a kill-induced error is the expected outcome
	return nil
}

// killNow is the best-effort cleanup for error paths; idempotent.
func (d *daemon) killNow() {
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	if d.cmd.Process.Kill() == nil {
		<-d.done
	}
	d.cmd = nil
}

// stop SIGTERMs the daemon and requires a clean drain (exit 0).
func (d *daemon) stop() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-d.done:
		d.cmd = nil
		if err != nil {
			return fmt.Errorf("guritad exited uncleanly on SIGTERM: %w", err)
		}
		return nil
	case <-time.After(30 * time.Second):
		d.killNow()
		return errors.New("guritad did not drain within 30s of SIGTERM")
	}
}

// listLeases asks the daemon for its unexpired leases ("key owner" strings).
func (d *daemon) listLeases() ([]string, error) {
	resp, err := http.Get(d.url() + "/v1/cache/leases")
	if err != nil {
		return nil, fmt.Errorf("listing daemon leases: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("listing daemon leases: status %d", resp.StatusCode)
	}
	var doc struct {
		Leases []struct {
			Key   string `json:"key"`
			Owner string `json:"owner"`
		} `json:"leases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decoding daemon lease list: %w", err)
	}
	out := make([]string, 0, len(doc.Leases))
	for _, l := range doc.Leases {
		out = append(out, fmt.Sprintf("%s held by %s", l.Key[:12], l.Owner))
	}
	return out, nil
}

// resolveBin finds a sibling gurita binary: explicit flag, next to this
// binary, then $PATH.
func resolveBin(flagVal, name string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), name)
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
	}
	if path, err := exec.LookPath(name); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("%s binary not found; build it next to guritachaos or pass the flag", name)
}

// globNames lists base names matching pattern under dir (empty when the
// directory does not exist).
func globNames(dir, pattern string) []string {
	matches, _ := filepath.Glob(filepath.Join(dir, pattern))
	names := make([]string, 0, len(matches))
	for _, m := range matches {
		names = append(names, filepath.Base(m))
	}
	return names
}
