// Command guritachaos is the kill -9 harness for multi-process campaigns:
// it spawns a fleet of guritaworker processes against one shared cache,
// SIGKILLs and SIGSTOPs them on a seeded schedule while they fight over the
// grid, and then audits the wreckage. The audit is the multi-process
// contract stated as assertions:
//
//   - the fleet (plus reclaims) finishes the whole grid, and every trial's
//     result bytes are identical to a serial in-process run of the same grid;
//   - no lease or poison files survive and the quarantine directory is empty
//     (crashes leave garbage, the protocol cleans all of it up);
//   - the merged worker manifests are self-consistent: the retry, reclaim,
//     and execution tallies in the stats columns equal the obs counters the
//     workers snapshotted alongside them.
//
// The schedule is deterministic in -seed (modulo OS scheduling, which is the
// point: the chaos is real). Exit status 0 means every assertion held.
//
// Usage:
//
//	go build -o /tmp/bin ./cmd/guritaworker ./cmd/guritachaos
//	/tmp/bin/guritachaos -workers 3 -kills 2 -stops 1 -seed 7
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	gurita "gurita"
	"gurita/internal/metrics"
	"gurita/internal/obs"
	"gurita/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "guritachaos: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workers   = flag.Int("workers", 3, "worker processes to keep in the fleet")
		parallel  = flag.Int("parallel", 2, "per-worker pool size")
		kills     = flag.Int("kills", 2, "SIGKILLs to deliver (each killed worker is respawned under a fresh id)")
		stops     = flag.Int("stops", 1, "SIGSTOP/SIGCONT pauses to deliver, each longer than the lease TTL")
		seed      = flag.Int64("seed", 1, "chaos-schedule seed")
		leaseTTL  = flag.Duration("lease-ttl", time.Second, "worker lease TTL (short, so reclaims happen within the run)")
		workerBin = flag.String("worker-bin", "", "guritaworker binary (default: next to this binary, then $PATH)")
		cacheDir  = flag.String("cache", "", "shared cache directory (default: a temp dir, removed when the run passes)")
		schedds   = flag.String("schedulers", "gurita,pfs", "comma-separated schedulers in the built-in grid")
		seeds     = flag.Int("seeds", 3, "workload seeds per scheduler in the built-in grid")
		jobs      = flag.Int("jobs", 30, "coflows per trial in the built-in grid")
		timeout   = flag.Duration("timeout", 3*time.Minute, "overall harness deadline")
	)
	flag.Parse()
	if *workers < 2 {
		return fmt.Errorf("-workers must be >= 2 (chaos needs survivors), got %d", *workers)
	}

	bin, err := resolveWorkerBin(*workerBin)
	if err != nil {
		return err
	}

	work, err := os.MkdirTemp("", "guritachaos-")
	if err != nil {
		return err
	}
	cache := *cacheDir
	if cache == "" {
		cache = filepath.Join(work, "cache")
	}
	if err := os.MkdirAll(cache, 0o755); err != nil {
		return err
	}

	// The built-in grid: small enough to finish in seconds, large enough
	// that kills land mid-flight.
	var specs []gurita.TrialSpec
	for _, name := range strings.Split(*schedds, ",") {
		for s := 1; s <= *seeds; s++ {
			specs = append(specs, gurita.TrialSpec{
				Scheduler: gurita.SchedulerKind(strings.TrimSpace(name)),
				Scenario:  gurita.CampaignTrace,
				Structure: gurita.StructureFBTao,
				Scale: gurita.Scale{
					Seed: int64(s), FatTreeK: 4, TraceCoflows: *jobs,
					MaxSenders: 6, MaxReducers: 3, TraceTimeScale: 0.1,
				},
				Queues: 4,
			})
		}
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("grid trial %d: %w", i, err)
		}
	}
	gridPath := filepath.Join(work, "grid.json")
	gridJSON, err := json.MarshalIndent(specs, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(gridPath, gridJSON, 0o644); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Serial in-process reference: the bytes every trial must reproduce.
	fmt.Fprintf(os.Stderr, "guritachaos: reference run (%d trials, serial)\n", len(specs))
	reference, err := renderResults(ctx, specs, gurita.CampaignOptions{Workers: 1})
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	// Spawn the fleet and run the seeded chaos schedule against it.
	fleet := &fleet{
		bin: bin, grid: gridPath, cache: cache,
		parallel: *parallel, ttl: *leaseTTL,
	}
	for i := 0; i < *workers; i++ {
		if err := fleet.spawn(); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	killed, stopped := 0, 0
	// The first kill lands fast, before a small grid can drain — the
	// harness's one guarantee is that at least one worker actually dies
	// mid-campaign.
	time.Sleep(100*time.Millisecond + time.Duration(rng.Intn(100))*time.Millisecond)
	for killed < *kills || stopped < *stops {
		if ctx.Err() != nil {
			fleet.killAll()
			return fmt.Errorf("chaos schedule overran -timeout %v", *timeout)
		}
		doKill := killed < *kills && (stopped >= *stops || rng.Intn(2) == 0)
		if doKill {
			id, err := fleet.killRandom(rng)
			if err != nil {
				return err
			}
			killed++
			fmt.Fprintf(os.Stderr, "guritachaos: SIGKILL %s (%d/%d), respawning\n", id, killed, *kills)
			if err := fleet.spawn(); err != nil {
				return err
			}
		} else {
			id, err := fleet.stopRandom(rng, *leaseTTL+(*leaseTTL)/2)
			if err != nil {
				return err
			}
			stopped++
			fmt.Fprintf(os.Stderr, "guritachaos: SIGSTOP/SIGCONT %s (%d/%d)\n", id, stopped, *stops)
		}
		time.Sleep(time.Duration(150+rng.Intn(450)) * time.Millisecond)
	}
	if err := fleet.wait(ctx); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "guritachaos: fleet done (%d spawned, %d killed, %d paused)\n", fleet.spawned, killed, stopped)

	// Verification pass: an in-process lease-mode campaign over the same
	// cache. It must see a fully populated cache, and it sweeps any stale
	// lease the schedule left behind.
	reg := obs.NewSyncRegistry()
	verified, err := renderResults(ctx, specs, gurita.CampaignOptions{
		Workers:  2,
		CacheDir: cache,
		MultiProcess: &gurita.MultiProcessOptions{
			Owner: "chaos-verify", LeaseTTL: *leaseTTL, Registry: reg,
		},
	})
	if err != nil {
		return fmt.Errorf("verification pass: %w", err)
	}

	// Assertion 1: exactly-once result bytes.
	for i := range specs {
		if !bytes.Equal(reference[i], verified[i]) {
			return fmt.Errorf("trial %d result bytes differ from the serial reference (%d vs %d bytes)",
				i, len(reference[i]), len(verified[i]))
		}
	}
	// Assertion 2: no leases, poisons, or quarantined entries survive.
	if left := globNames(filepath.Join(cache, runner.LeaseSubdir), "*"); len(left) != 0 {
		return fmt.Errorf("lease files left behind: %v", left)
	}
	if q := globNames(filepath.Join(cache, runner.QuarantineDir), "*"); len(q) != 0 {
		return fmt.Errorf("quarantined cache entries: %v", q)
	}
	// Assertion 3: the merged manifests are self-consistent — stats columns
	// equal the counters snapshotted next to them.
	shards, err := runner.LoadWorkerManifests(cache, metrics.WorkerManifestSchema, "")
	if err != nil {
		return err
	}
	// Shards exist only for workers that finished; at minimum the survivors
	// and the verify pass wrote one each.
	if len(shards) < 2 {
		return fmt.Errorf("only %d manifest shards found, want >= 2", len(shards))
	}
	merged, err := runner.MergeWorkerManifests(shards)
	if err != nil {
		return err
	}
	for col, want := range map[string]int{
		"runner.trials.executed": merged.Executed,
		"runner.trials.retried":  merged.Retries,
		"lease.reclaimed":        merged.Reclaims,
	} {
		if got := merged.Counters[col]; got != int64(want) {
			return fmt.Errorf("merged manifest disagrees with obs counters: %s = %d, stats column = %d", col, got, want)
		}
	}
	if len(merged.Failures) != 0 {
		return fmt.Errorf("healthy grid degraded: %+v", merged.Failures)
	}
	if merged.Executed+merged.CacheHits+merged.DedupHits < len(specs) {
		return fmt.Errorf("accounting hole: %d trials but executed+cache+dedup = %d",
			len(specs), merged.Executed+merged.CacheHits+merged.DedupHits)
	}

	fmt.Printf("guritachaos: PASS — %d trials, %d workers spawned, %d SIGKILLed, %d paused; executed %d, reclaims %d, retries %d, byte-identical\n",
		len(specs), fleet.spawned, killed, stopped, merged.Executed, merged.Reclaims, merged.Retries)
	if *cacheDir == "" {
		os.RemoveAll(work)
	}
	return nil
}

// renderResults runs the grid and renders every trial's result with the same
// writer guritasim -json uses, so byte comparison is end-to-end.
func renderResults(ctx context.Context, specs []gurita.TrialSpec, opts gurita.CampaignOptions) ([][]byte, error) {
	opts.IncludeCoflows = true
	results, _, err := gurita.RunCampaign(ctx, specs, opts)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(results))
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("trial %d produced no result", i)
		}
		var buf bytes.Buffer
		if err := gurita.WriteResultJSON(&buf, res, false); err != nil {
			return nil, err
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

// fleet manages the worker processes under chaos.
type fleet struct {
	bin, grid, cache string
	parallel         int
	ttl              time.Duration
	spawned          int
	live             []*worker
}

type worker struct {
	id   string
	cmd  *exec.Cmd
	done chan error
}

func (f *fleet) spawn() error {
	f.spawned++
	id := fmt.Sprintf("chaos-w%d", f.spawned)
	cmd := exec.Command(f.bin,
		"-grid", f.grid, "-cache", f.cache,
		"-parallel", strconv.Itoa(f.parallel),
		"-lease-ttl", f.ttl.String(),
		"-worker-id", id, "-retries", "1", "-quiet")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawning %s: %w", id, err)
	}
	w := &worker{id: id, cmd: cmd, done: make(chan error, 1)}
	go func() { w.done <- cmd.Wait() }()
	f.live = append(f.live, w)
	return nil
}

// pick returns a random still-running worker, pruning finished ones.
func (f *fleet) pick(rng *rand.Rand) (*worker, error) {
	alive := f.live[:0]
	for _, w := range f.live {
		select {
		case err := <-w.done:
			if err != nil {
				return nil, fmt.Errorf("worker %s exited under chaos: %w", w.id, err)
			}
		default:
			alive = append(alive, w)
		}
	}
	f.live = alive
	if len(f.live) == 0 {
		return nil, nil
	}
	return f.live[rng.Intn(len(f.live))], nil
}

// killRandom SIGKILLs one live worker and reaps it. When the fleet already
// finished the grid there is nothing left to kill — that counts: the
// surviving schedule was too gentle, but the contract under test is the
// fleet's, not the schedule's.
func (f *fleet) killRandom(rng *rand.Rand) (string, error) {
	w, err := f.pick(rng)
	if err != nil || w == nil {
		return "(fleet already done)", err
	}
	if err := w.cmd.Process.Kill(); err != nil {
		return "", fmt.Errorf("killing %s: %w", w.id, err)
	}
	<-w.done // reap; a kill-induced error is the expected outcome
	for i, lw := range f.live {
		if lw == w {
			f.live = append(f.live[:i], f.live[i+1:]...)
			break
		}
	}
	return w.id, nil
}

// stopRandom SIGSTOPs one live worker for longer than the lease TTL, then
// SIGCONTs it — the worker wakes to find its leases reclaimed and must
// defer to its peers' results.
func (f *fleet) stopRandom(rng *rand.Rand, pause time.Duration) (string, error) {
	w, err := f.pick(rng)
	if err != nil || w == nil {
		return "(fleet already done)", err
	}
	if err := w.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		return "", fmt.Errorf("stopping %s: %w", w.id, err)
	}
	time.Sleep(pause)
	if err := w.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		return "", fmt.Errorf("resuming %s: %w", w.id, err)
	}
	return w.id, nil
}

// wait blocks until every live worker exits cleanly or ctx expires.
func (f *fleet) wait(ctx context.Context) error {
	for _, w := range f.live {
		select {
		case err := <-w.done:
			if err != nil {
				return fmt.Errorf("worker %s failed: %w", w.id, err)
			}
		case <-ctx.Done():
			f.killAll()
			return fmt.Errorf("workers still running at -timeout: %s", w.id)
		}
	}
	f.live = nil
	return nil
}

func (f *fleet) killAll() {
	for _, w := range f.live {
		_ = w.cmd.Process.Kill()
		<-w.done
	}
	f.live = nil
}

// resolveWorkerBin finds guritaworker: explicit flag, next to this binary,
// then $PATH.
func resolveWorkerBin(flagVal string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "guritaworker")
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
	}
	if path, err := exec.LookPath("guritaworker"); err == nil {
		return path, nil
	}
	return "", errors.New("guritaworker binary not found; build it next to guritachaos or pass -worker-bin")
}

// globNames lists base names matching pattern under dir (empty when the
// directory does not exist).
func globNames(dir, pattern string) []string {
	matches, _ := filepath.Glob(filepath.Join(dir, pattern))
	names := make([]string, 0, len(matches))
	for _, m := range matches {
		names = append(names, filepath.Base(m))
	}
	return names
}
