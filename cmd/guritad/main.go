// Command guritad is the long-running campaign daemon: it serves the
// internal/serve HTTP/JSON API, executing submitted gurita.TrialSpec grids
// on the campaign engine with bounded admission, tenant-weighted fair
// scheduling, and a shared content-addressed result cache that dedups
// identical trials across tenants (single-flight per cache key).
//
// The daemon also exports that cache over HTTP (/v1/cache/): guritaworker
// and guritasim processes pointed at it with -cache-url share trials, trial
// leases, and manifest shards across machines with no shared filesystem —
// the daemon's disk is the cache, its clock arbitrates lease expiry
// (-cache-lease-ttl, -cache-lease-max-attempts).
//
// The config surface reuses the shared CLI flag groups (internal/cliflags),
// so -cache/-parallel/-trial-timeout/-obs-trace/-cpuprofile mean exactly
// what they mean in guritasim and figures. Fault profiles are per-trial
// daemon-side: submit them inside each spec's "faults" field rather than as
// daemon flags, so one tenant's chaos never leaks into another's results.
//
// Shutdown is graceful: the first SIGTERM/SIGINT stops admissions, lets
// in-flight trials finish (queued trials are skipped, but stay resumable
// from the cache), flushes every campaign manifest, and exits 0. A second
// signal hard-cancels in-flight simulations. -drain-timeout bounds the
// graceful phase.
//
// Usage:
//
//	guritad -listen localhost:6071 -cache /var/cache/gurita \
//	        -tenant prod=4 -tenant dev=1 -slots 8
//	curl -s localhost:6071/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gurita/internal/cliflags"
	"gurita/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "guritad:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			fmt.Fprintln(os.Stderr, "run 'guritad -h' for flag usage")
		}
		os.Exit(1)
	}
}

// usageError marks bad-invocation errors so main can point at -h.
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

func badUsage(format string, args ...any) error {
	return &usageError{fmt.Errorf(format, args...)}
}

func run() error {
	var (
		listen       = flag.String("listen", "localhost:6071", "serve the campaign API on this address (host:0 picks a free port)")
		addrFile     = flag.String("addr-file", "", "write the bound listen address to this file once serving (for scripts using :0)")
		slots        = flag.Int("slots", 0, "concurrently executing trials across all tenants (0 = -parallel)")
		capacity     = flag.Int("capacity", 1024, "max outstanding trials across all campaigns; beyond it submissions get 429")
		queues       = flag.Int("queues", 4, "fair-queue priority levels (mirrors the simulator's switch queues)")
		retryAfter   = flag.Int("retry-after", 5, "Retry-After hint on 429 responses, seconds")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "bound on the graceful drain after SIGTERM/SIGINT")
		cacheTTL     = flag.Duration("cache-lease-ttl", 0, "TTL for remote-cache trial leases handed to /v1/cache/ workers (0 = 5s)")
		cacheMaxAtt  = flag.Int("cache-lease-max-attempts", 0, "claim attempts per trial across remote-cache workers before quarantine (0 = 5)")
		tenants      = tenantWeights{}

		campaign = cliflags.RegisterCampaign(flag.CommandLine, "trials")
		leaseFl  = cliflags.RegisterLease(flag.CommandLine, true)
		profFl   = cliflags.RegisterProf(flag.CommandLine)
		obsFl    = cliflags.RegisterObs(flag.CommandLine, "for failed trials")
	)
	flag.Var(&tenants, "tenant", "tenant weight as name=weight (repeatable); unknown tenants get weight 1")
	flag.Parse()
	setFlags := cliflags.Set(flag.CommandLine)

	switch {
	case campaign.CacheDir == "":
		return badUsage("-cache DIR is required: the shared cache is the daemon's dedup layer and drain checkpoint")
	case *slots < 0:
		return badUsage("-slots must be >= 0, got %d", *slots)
	case *capacity < 1:
		return badUsage("-capacity must be >= 1 trials, got %d", *capacity)
	case *queues < 1:
		return badUsage("-queues must be >= 1, got %d", *queues)
	case *retryAfter < 1:
		return badUsage("-retry-after must be >= 1 seconds, got %d", *retryAfter)
	case *drainTimeout <= 0:
		return badUsage("-drain-timeout must be positive, got %v", *drainTimeout)
	case *cacheTTL < 0:
		return badUsage("-cache-lease-ttl must be >= 0, got %v", *cacheTTL)
	case *cacheMaxAtt < 0:
		return badUsage("-cache-lease-max-attempts must be >= 0, got %d", *cacheMaxAtt)
	case obsFl.Listen != "":
		return badUsage("-obs-listen is the single-campaign introspector; the daemon's own API serves progress (GET /v1/campaigns/{id})")
	}
	if err := campaign.Validate(); err != nil {
		return &usageError{err}
	}
	if err := leaseFl.Validate(setFlags, campaign); err != nil {
		return &usageError{err}
	}

	stopProf, err := profFl.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	srv, err := serve.New(serve.Config{
		CacheDir:     campaign.CacheDir,
		Workers:      campaign.Parallel,
		Force:        campaign.Force,
		TrialTimeout: campaign.TrialTimeout,
		Slots:        *slots,
		Capacity:     *capacity,
		Queues:       *queues,
		RetryAfter:   *retryAfter,
		Tenants:      tenants,
		ObsTraceDir:  obsFl.TraceDir,
		ObsDumpDir:   obsFl.DumpDir,
		MultiProcess: leaseFl.Options(),

		CacheLeaseTTL:         *cacheTTL,
		CacheLeaseMaxAttempts: *cacheMaxAtt,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *listen, err)
	}
	if *addrFile != "" {
		// Written atomically so a watcher never reads a half address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	effSlots := *slots
	if effSlots <= 0 {
		effSlots = campaign.Parallel
	}
	fmt.Fprintf(os.Stderr, "guritad: serving on http://%s (cache %s, %d slots, capacity %d)\n",
		ln.Addr(), campaign.CacheDir, effSlots, *capacity)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "guritad: %v: draining (in-flight trials finish, queued trials skipped)\n", sig)
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}

	// First signal: graceful drain. Second: hard-cancel in-flight trials.
	srv.Drain()
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "guritad: %v: aborting in-flight trials\n", sig)
		srv.Abort()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	waitErr := srv.Wait(ctx)
	// The API stays up through the drain so pollers watch it finish; only
	// then does the listener close.
	httpSrv.Close()
	if waitErr != nil {
		return waitErr
	}
	fmt.Fprintln(os.Stderr, "guritad: drained cleanly")
	return nil
}

// tenantWeights collects repeated -tenant name=weight flags.
type tenantWeights map[string]float64

func (t *tenantWeights) String() string {
	names := make([]string, 0, len(*t))
	for k := range *t {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%g", k, (*t)[k])
	}
	return strings.Join(parts, ",")
}

func (t *tenantWeights) Set(v string) error {
	name, weight, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=weight, got %q", v)
	}
	w, err := strconv.ParseFloat(weight, 64)
	if err != nil || w <= 0 {
		return fmt.Errorf("weight must be a positive number, got %q", weight)
	}
	if *t == nil {
		*t = tenantWeights{}
	}
	(*t)[name] = w
	return nil
}
