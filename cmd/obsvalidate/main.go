// Command obsvalidate structurally checks observability artifacts: Chrome
// trace_event JSON exported by -obs-trace (validated against the trace_event
// schema the exporter targets) and flight-recorder JSONL dumps written by
// -obs-dump. CI runs it over every trace a smoke campaign exports; run it by
// hand before loading a trace into ui.perfetto.dev to get a line-level error
// instead of a silently empty timeline.
//
// Usage:
//
//	obsvalidate traces/*.trace.json dumps/*.dump.jsonl
//
// Files ending in .jsonl are parsed as dumps; everything else is validated
// as a trace_event document. Exits non-zero on the first invalid file.
package main

import (
	"fmt"
	"os"
	"strings"

	gurita "gurita"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: obsvalidate FILE...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := validate(path); err != nil {
			fmt.Fprintf(os.Stderr, "obsvalidate: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	fmt.Printf("%d files valid\n", len(os.Args)-1)
}

func validate(path string) error {
	if strings.HasSuffix(path, ".jsonl") {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		events, decisions, err := gurita.ReadObsJSONL(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d events, %d decisions\n", path, len(events), len(decisions))
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return gurita.ValidateChromeTrace(data)
}
