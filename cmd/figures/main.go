// Command figures regenerates every table and figure of the paper's
// evaluation (§V). By default it runs at a quick scale; set
// GURITA_FULLSCALE=1 (or -full) for the paper-scale configuration
// (8-pod trace runs; 48-pod, 10000-job bursty runs — expect long runtimes).
//
// Usage:
//
//	figures               # everything, quick scale
//	figures -fig fig6     # one figure
//	figures -full         # paper scale
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	gurita "gurita"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig    = flag.String("fig", "all", "which figure: table1, fig2, fig4, fig5, fig6, fig7, fig8, all")
		full   = flag.Bool("full", false, "paper-scale configuration (same as GURITA_FULLSCALE=1)")
		csvDir = flag.String("csv", "", "also write each table as <dir>/<name>.csv for plotting")
		trials = flag.Int("trials", 1, "average each figure over this many seeds")
	)
	flag.Parse()

	scale := gurita.ScaleFromEnv()
	if *full {
		scale = gurita.PaperScale()
	}
	scale.Trials = *trials
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	emit := func(name string, ft gurita.FigureTable) error {
		fmt.Println(ft)
		if *csvDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(*csvDir, name+".csv"), []byte(ft.CSV()), 0o644)
	}

	if want("table1") {
		if err := emit("table1", gurita.Table1()); err != nil {
			return err
		}
	}
	if want("fig2") {
		ft, tbs, perStage := gurita.Fig2Motivation()
		if err := emit("fig2", ft); err != nil {
			return err
		}
		fmt.Printf("average JCT: %.2f (TBS) vs %.2f (per-stage)\n\n", tbs, perStage)
	}
	if want("fig4") {
		ft, wide, narrow := gurita.Fig4Blocking()
		if err := emit("fig4", ft); err != nil {
			return err
		}
		fmt.Printf("average JCT: %.2f (wide-first) vs %.2f (narrow-first)\n\n", wide, narrow)
	}
	if want("fig5") {
		ft, _, err := gurita.Fig5Improvements(scale)
		if err != nil {
			return err
		}
		if err := emit("fig5", ft); err != nil {
			return err
		}
	}
	structures := []struct {
		label string
		s     gurita.Structure
	}{
		{"fbtao", gurita.StructureFBTao},
		{"tpcds", gurita.StructureTPCDS},
	}
	if want("fig6") {
		for _, st := range structures {
			ft, _, err := gurita.Fig6TraceCategories(st.s, scale)
			if err != nil {
				return err
			}
			if err := emit("fig6-"+st.label, ft); err != nil {
				return err
			}
		}
	}
	if want("fig7") {
		for _, st := range structures {
			ft, _, err := gurita.Fig7BurstyCategories(st.s, scale)
			if err != nil {
				return err
			}
			if err := emit("fig7-"+st.label, ft); err != nil {
				return err
			}
		}
	}
	if want("fig8") {
		for _, st := range structures {
			ft, _, err := gurita.Fig8GuritaPlus(st.s, scale)
			if err != nil {
				return err
			}
			if err := emit("fig8-"+st.label, ft); err != nil {
				return err
			}
		}
	}
	return nil
}
