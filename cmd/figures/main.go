// Command figures regenerates every table and figure of the paper's
// evaluation (§V). By default it runs at a quick scale; set
// GURITA_FULLSCALE=1 (or -full) for the paper-scale configuration
// (8-pod trace runs; 48-pod, 10000-job bursty runs — expect long runtimes).
//
// Simulation grids run through the campaign engine: trials execute on
// -parallel workers (table output stays byte-identical to a serial run),
// and with -cache DIR every finished trial is persisted so an interrupted
// run (Ctrl-C) resumes where it stopped and repeat runs skip straight to
// aggregation. Progress goes to stderr; tables to stdout.
//
// Usage:
//
//	figures               # everything, quick scale
//	figures -fig fig6     # one figure
//	figures -full         # paper scale
//	figures -cache .gurita-cache -trials 5    # resumable multi-seed run
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	gurita "gurita"
	"gurita/internal/prof"
	"gurita/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// knownFigs is the -fig vocabulary, in output order.
var knownFigs = []string{"table1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "failures", "all"}

func run() (err error) {
	var (
		fig      = flag.String("fig", "all", "which figure: "+strings.Join(knownFigs, ", "))
		full     = flag.Bool("full", false, "paper-scale configuration (same as GURITA_FULLSCALE=1)")
		csvDir   = flag.String("csv", "", "also write each table as <dir>/<name>.csv for plotting")
		trials   = flag.Int("trials", 1, "average each figure over this many seeds")
		parallel = flag.Int("parallel", runtime.NumCPU(), "campaign worker-pool size (output is identical for any value)")
		cacheDir = flag.String("cache", "", "persist finished trials under this directory and resume/skip from it")
		force    = flag.Bool("force", false, "re-run trials even when cached")
		// -exectrace matches guritasim, where plain -trace means trace replay.
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		execTrace  = flag.String("exectrace", "", "write a runtime execution trace to this file")

		faultRates   = flag.String("faults", "", "comma-separated link-failure rates for the failures sweep (default 0,0.5,1,2,4)")
		trialTimeout = flag.Duration("trial-timeout", 0, "per-trial wall-clock bound, e.g. 90s (0 = unbounded)")
		keepGoing    = flag.Bool("keep-going", false, "degrade gracefully: skip failed trials (reported at the end) instead of aborting")

		obsTrace  = flag.String("obs-trace", "", "export each executed trial as Chrome trace_event JSON under this directory (open in ui.perfetto.dev)")
		obsDump   = flag.String("obs-dump", "", "write flight-recorder JSONL dumps for failed trials under this directory")
		obsListen = flag.String("obs-listen", "", "serve live campaign introspection JSON on this address, e.g. localhost:6070")
	)
	flag.Parse()

	figOK := false
	for _, name := range knownFigs {
		if *fig == name {
			figOK = true
			break
		}
	}
	if !figOK {
		return fmt.Errorf("unknown -fig %q; valid: %s (run 'figures -h' for usage)",
			*fig, strings.Join(knownFigs, ", "))
	}
	if *trials < 1 {
		return fmt.Errorf("-trials must be >= 1, got %d (run 'figures -h' for usage)", *trials)
	}
	if *trialTimeout < 0 {
		return fmt.Errorf("-trial-timeout must be >= 0, got %v (run 'figures -h' for usage)", *trialTimeout)
	}
	if *parallel <= 0 {
		return fmt.Errorf("-parallel must be >= 1 workers, got %d (run 'figures -h' for usage)", *parallel)
	}
	if *force && *cacheDir == "" {
		return fmt.Errorf("-force re-runs cached trials, so it needs -cache DIR (run 'figures -h' for usage)")
	}
	rates, err := parseRates(*faultRates)
	if err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile, *execTrace)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	// Ctrl-C cancels the campaign between trials; with -cache, finished
	// trials are already on disk and the next invocation resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scale := gurita.ScaleFromEnv()
	if *full {
		scale = gurita.PaperScale()
	}
	scale.Trials = *trials
	progress := progressPrinter()
	var inspect *runner.Introspector
	if *obsListen != "" {
		inspect, err = runner.NewIntrospector(*obsListen)
		if err != nil {
			return err
		}
		defer inspect.Close()
		fmt.Fprintf(os.Stderr, "introspection: http://%s/campaign\n", inspect.Addr())
		inner := progress
		progress = func(p gurita.CampaignProgress) {
			inspect.Update(p)
			inner(p)
		}
	}
	opts := gurita.CampaignOptions{
		Workers:         *parallel,
		CacheDir:        *cacheDir,
		Force:           *force,
		Progress:        progress,
		TrialTimeout:    *trialTimeout,
		ContinueOnError: *keepGoing,
		ObsTraceDir:     *obsTrace,
		ObsDumpDir:      *obsDump,
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	emit := func(name string, ft gurita.FigureTable) error {
		fmt.Println(ft)
		if *csvDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(*csvDir, name+".csv"), []byte(ft.CSV()), 0o644)
	}

	if want("table1") {
		if err := emit("table1", gurita.Table1()); err != nil {
			return err
		}
	}
	if want("fig2") {
		ft, tbs, perStage := gurita.Fig2Motivation()
		if err := emit("fig2", ft); err != nil {
			return err
		}
		fmt.Printf("average JCT: %.2f (TBS) vs %.2f (per-stage)\n\n", tbs, perStage)
	}
	if want("fig4") {
		ft, wide, narrow := gurita.Fig4Blocking()
		if err := emit("fig4", ft); err != nil {
			return err
		}
		fmt.Printf("average JCT: %.2f (wide-first) vs %.2f (narrow-first)\n\n", wide, narrow)
	}
	if want("fig5") {
		ft, _, err := gurita.Fig5ImprovementsWith(ctx, scale, opts)
		if err != nil {
			return err
		}
		if err := emit("fig5", ft); err != nil {
			return err
		}
	}
	structures := []struct {
		label string
		s     gurita.Structure
	}{
		{"fbtao", gurita.StructureFBTao},
		{"tpcds", gurita.StructureTPCDS},
	}
	if want("fig6") {
		for _, st := range structures {
			ft, _, err := gurita.Fig6TraceCategoriesWith(ctx, st.s, scale, opts)
			if err != nil {
				return err
			}
			if err := emit("fig6-"+st.label, ft); err != nil {
				return err
			}
		}
	}
	if want("fig7") {
		for _, st := range structures {
			ft, _, err := gurita.Fig7BurstyCategoriesWith(ctx, st.s, scale, opts)
			if err != nil {
				return err
			}
			if err := emit("fig7-"+st.label, ft); err != nil {
				return err
			}
		}
	}
	if want("fig8") {
		for _, st := range structures {
			ft, _, err := gurita.Fig8GuritaPlusWith(ctx, st.s, scale, opts)
			if err != nil {
				return err
			}
			if err := emit("fig8-"+st.label, ft); err != nil {
				return err
			}
		}
	}
	if want("failures") {
		ft, _, err := gurita.ExperimentFailureSweepWith(ctx, scale, opts, rates...)
		if err != nil {
			return err
		}
		if err := emit("failures", ft); err != nil {
			return err
		}
	}
	return nil
}

// parseRates parses the -faults rate list; "" selects the sweep's default.
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	rates := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("-faults wants comma-separated non-negative rates (failures/s), e.g. \"0,1,2\"; bad entry %q", p)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

// progressPrinter renders campaign progress as a single self-overwriting
// stderr line, cleared when the campaign completes so table output stays
// clean. stdout (the tables) is untouched.
func progressPrinter() func(gurita.CampaignProgress) {
	return func(p gurita.CampaignProgress) {
		line := fmt.Sprintf("campaign: %d/%d trials", p.Done, p.Total)
		if p.CacheHits > 0 {
			line += fmt.Sprintf(" (%d cached)", p.CacheHits)
		}
		line += fmt.Sprintf("  elapsed %s", p.Elapsed.Round(time.Second))
		if p.ETA > 0 {
			line += fmt.Sprintf("  ETA %s", p.ETA.Round(time.Second))
		}
		fmt.Fprintf(os.Stderr, "\r%-70s", line)
		if p.Done == p.Total {
			fmt.Fprintf(os.Stderr, "\r%70s\r", "")
		}
	}
}
