// Command figures regenerates every table and figure of the paper's
// evaluation (§V). By default it runs at a quick scale; set
// GURITA_FULLSCALE=1 (or -full) for the paper-scale configuration
// (8-pod trace runs; 48-pod, 10000-job bursty runs — expect long runtimes).
//
// Simulation grids run through the campaign engine: trials execute on
// -parallel workers (table output stays byte-identical to a serial run),
// and with -cache DIR every finished trial is persisted so an interrupted
// run (Ctrl-C) resumes where it stopped and repeat runs skip straight to
// aggregation. Progress goes to stderr; tables to stdout.
//
// Usage:
//
//	figures               # everything, quick scale
//	figures -fig fig6     # one figure
//	figures -full         # paper scale
//	figures -cache .gurita-cache -trials 5    # resumable multi-seed run
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	gurita "gurita"
	"gurita/internal/cliflags"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// knownFigs is the -fig vocabulary, in output order.
var knownFigs = []string{"table1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "failures", "all"}

func run() (err error) {
	var (
		fig    = flag.String("fig", "all", "which figure: "+strings.Join(knownFigs, ", "))
		full   = flag.Bool("full", false, "paper-scale configuration (same as GURITA_FULLSCALE=1)")
		csvDir = flag.String("csv", "", "also write each table as <dir>/<name>.csv for plotting")
		trials = flag.Int("trials", 1, "average each figure over this many seeds")

		// Shared flag groups (identical across gurita commands): the campaign
		// pool/cache group, profiling (-exectrace matches guritasim, where
		// plain -trace means trace replay), and observability. -faults stays
		// local: here it is the failure sweep's rate list, not a single rate.
		campaign = cliflags.RegisterCampaign(flag.CommandLine, "trials")
		profFl   = cliflags.RegisterProf(flag.CommandLine)
		obsFl    = cliflags.RegisterObs(flag.CommandLine, "for failed trials")

		faultRates = flag.String("faults", "", "comma-separated link-failure rates for the failures sweep (default 0,0.5,1,2,4)")
		keepGoing  = flag.Bool("keep-going", false, "degrade gracefully: skip failed trials (reported at the end) instead of aborting")
	)
	flag.Parse()

	figOK := false
	for _, name := range knownFigs {
		if *fig == name {
			figOK = true
			break
		}
	}
	if !figOK {
		return fmt.Errorf("unknown -fig %q; valid: %s (run 'figures -h' for usage)",
			*fig, strings.Join(knownFigs, ", "))
	}
	if *trials < 1 {
		return fmt.Errorf("-trials must be >= 1, got %d (run 'figures -h' for usage)", *trials)
	}
	if err := campaign.Validate(); err != nil {
		return fmt.Errorf("%w (run 'figures -h' for usage)", err)
	}
	rates, err := parseRates(*faultRates)
	if err != nil {
		return err
	}

	stopProf, err := profFl.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	// Ctrl-C cancels the campaign between trials; with -cache, finished
	// trials are already on disk and the next invocation resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scale := gurita.ScaleFromEnv()
	if *full {
		scale = gurita.PaperScale()
	}
	scale.Trials = *trials
	inspect, progress, err := obsFl.Introspection(cliflags.ProgressPrinter("trials"))
	if err != nil {
		return err
	}
	if inspect != nil {
		defer inspect.Close()
	}
	opts := gurita.CampaignOptions{
		Workers:         campaign.Parallel,
		CacheDir:        campaign.CacheDir,
		CacheURL:        campaign.CacheURL,
		Force:           campaign.Force,
		Progress:        progress,
		TrialTimeout:    campaign.TrialTimeout,
		ContinueOnError: *keepGoing,
		ObsTraceDir:     obsFl.TraceDir,
		ObsDumpDir:      obsFl.DumpDir,
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	emit := func(name string, ft gurita.FigureTable) error {
		fmt.Println(ft)
		if *csvDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(*csvDir, name+".csv"), []byte(ft.CSV()), 0o644)
	}

	if want("table1") {
		if err := emit("table1", gurita.Table1()); err != nil {
			return err
		}
	}
	if want("fig2") {
		ft, tbs, perStage := gurita.Fig2Motivation()
		if err := emit("fig2", ft); err != nil {
			return err
		}
		fmt.Printf("average JCT: %.2f (TBS) vs %.2f (per-stage)\n\n", tbs, perStage)
	}
	if want("fig4") {
		ft, wide, narrow := gurita.Fig4Blocking()
		if err := emit("fig4", ft); err != nil {
			return err
		}
		fmt.Printf("average JCT: %.2f (wide-first) vs %.2f (narrow-first)\n\n", wide, narrow)
	}
	if want("fig5") {
		ft, _, err := gurita.Fig5ImprovementsWith(ctx, scale, opts)
		if err != nil {
			return err
		}
		if err := emit("fig5", ft); err != nil {
			return err
		}
	}
	structures := []struct {
		label string
		s     gurita.Structure
	}{
		{"fbtao", gurita.StructureFBTao},
		{"tpcds", gurita.StructureTPCDS},
	}
	if want("fig6") {
		for _, st := range structures {
			ft, _, err := gurita.Fig6TraceCategoriesWith(ctx, st.s, scale, opts)
			if err != nil {
				return err
			}
			if err := emit("fig6-"+st.label, ft); err != nil {
				return err
			}
		}
	}
	if want("fig7") {
		for _, st := range structures {
			ft, _, err := gurita.Fig7BurstyCategoriesWith(ctx, st.s, scale, opts)
			if err != nil {
				return err
			}
			if err := emit("fig7-"+st.label, ft); err != nil {
				return err
			}
		}
	}
	if want("fig8") {
		for _, st := range structures {
			ft, _, err := gurita.Fig8GuritaPlusWith(ctx, st.s, scale, opts)
			if err != nil {
				return err
			}
			if err := emit("fig8-"+st.label, ft); err != nil {
				return err
			}
		}
	}
	if want("failures") {
		ft, _, err := gurita.ExperimentFailureSweepWith(ctx, scale, opts, rates...)
		if err != nil {
			return err
		}
		if err := emit("failures", ft); err != nil {
			return err
		}
	}
	return nil
}

// parseRates parses the -faults rate list; "" selects the sweep's default.
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	rates := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("-faults wants comma-separated non-negative rates (failures/s), e.g. \"0,1,2\"; bad entry %q", p)
		}
		rates = append(rates, v)
	}
	return rates, nil
}
