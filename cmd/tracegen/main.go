// Command tracegen synthesizes workload traces.
//
// It emits either a coflow-benchmark-format trace (the format of the public
// Facebook trace the paper replays) or a native JSON multi-stage workload
// with explicit DAGs.
//
// Usage:
//
//	tracegen -coflows 500 -racks 150 -seed 1 > fb-like.txt
//	tracegen -format jobs -jobs 200 -servers 128 -structure mixed > jobs.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	gurita "gurita"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		format    = flag.String("format", "benchmark", `output format: "benchmark" (coflow-benchmark text) or "jobs" (native JSON DAGs)`)
		coflows   = flag.Int("coflows", 500, "benchmark format: number of coflows")
		racks     = flag.Int("racks", 150, "benchmark format: number of racks")
		jobs      = flag.Int("jobs", 200, "jobs format: number of jobs")
		servers   = flag.Int("servers", 128, "jobs format: server placement domain")
		structure = flag.String("structure", "mixed", "jobs format: single, fb-tao, tpc-ds, mixed")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	switch *format {
	case "benchmark":
		specs := gurita.SynthesizeTrace(*coflows, *racks, *seed)
		return gurita.WriteTrace(w, *racks, specs)
	case "jobs":
		st, err := parseStructure(*structure)
		if err != nil {
			return err
		}
		generated, err := gurita.GenerateWorkload(gurita.WorkloadConfig{
			NumJobs: *jobs, Seed: *seed, Servers: *servers, Structure: st,
		})
		if err != nil {
			return err
		}
		return gurita.WriteJobs(w, generated)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func parseStructure(s string) (gurita.Structure, error) {
	switch s {
	case "single":
		return gurita.StructureSingle, nil
	case "fb-tao":
		return gurita.StructureFBTao, nil
	case "tpc-ds":
		return gurita.StructureTPCDS, nil
	case "mixed":
		return gurita.StructureMixed, nil
	default:
		return 0, fmt.Errorf("unknown structure %q", s)
	}
}
