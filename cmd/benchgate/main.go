// Command benchgate is the CI performance gate: it compares `go test
// -bench -benchmem` output against a committed baseline (BENCH_*.json)
// and exits nonzero when a benchmark regresses past budget.
//
// Usage:
//
//	go test -run xxx -bench X -benchmem ./... | benchgate -baseline BENCH_baseline.json
//
// Gating rules:
//
//   - ns/op may not regress more than -max-regress (default 25%) over the
//     baseline. Speedups are reported but never fail; rerun with -update
//     to ratchet the baseline after an intentional improvement.
//   - allocs/op on a 0-alloc path (baseline allocs_per_op == 0) may not
//     increase at all: those baselines are contracts, not measurements.
//     Increases on nonzero-alloc paths are reported as warnings only —
//     they are load- and version-sensitive, and the ns/op budget already
//     bounds their cost.
//   - Benchmarks in the input but absent from the baseline are listed so
//     new benchmarks get committed; they never fail the gate.
//
// -update rewrites the measured fields of every baseline entry present in
// the input (preserving scenario/contract annotations) so refreshing a
// baseline is one command instead of hand-editing JSON.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one baseline benchmark record. Annotation fields are preserved
// verbatim by -update; only the three measured fields are rewritten.
type entry struct {
	Scenario    string  `json:"scenario,omitempty"`
	Command     string  `json:"command,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Contract    string  `json:"contract,omitempty"`
}

// baseline mirrors the BENCH_*.json layout. Extra top-level fields (the
// end_to_end notes) round-trip through Raw so -update does not drop them.
type baseline struct {
	Description string           `json:"description"`
	CapturedAt  string           `json:"captured_at"`
	Machine     string           `json:"machine"`
	Command     string           `json:"command,omitempty"`
	Benchmarks  map[string]entry `json:"benchmarks"`

	raw map[string]json.RawMessage // full file, for lossless -update
}

// measurement is one parsed benchmark result line.
type measurement struct {
	name   string
	ns     float64
	bytes  float64
	allocs float64
	hasMem bool
}

func main() {
	var (
		basePath   = flag.String("baseline", "BENCH_baseline.json", "baseline JSON to gate against")
		maxRegress = flag.Float64("max-regress", 0.25, "allowed fractional ns/op regression (0.25 = +25%)")
		minNs      = flag.Float64("min-ns", 50, "skip ns/op gating below this baseline (timer granularity dominates)")
		update     = flag.Bool("update", false, "rewrite baseline measurements from the input instead of gating")
	)
	flag.Parse()

	bl, err := loadBaseline(*basePath)
	if err != nil {
		fatalf("benchgate: %v", err)
	}
	ms, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("benchgate: %v", err)
	}
	if len(ms) == 0 {
		fatalf("benchgate: no benchmark results on stdin (pipe `go test -bench -benchmem` output)")
	}

	if *update {
		if err := updateBaseline(*basePath, bl, ms); err != nil {
			fatalf("benchgate: %v", err)
		}
		fmt.Printf("benchgate: updated %d measurement(s) in %s\n", len(ms), *basePath)
		return
	}

	failures := gate(bl, ms, *maxRegress, *minNs)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL\t"+f)
		}
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) vs %s (rerun with -update after an intentional change)\n",
			len(failures), *basePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within budget of %s\n", len(ms), *basePath)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	bl := &baseline{}
	if err := json.Unmarshal(data, bl); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := json.Unmarshal(data, &bl.raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(bl.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no \"benchmarks\" entries", path)
	}
	return bl, nil
}

// parseBench extracts result lines from `go test -bench` output. A result
// line is "BenchmarkName-P  N  V ns/op  [V B/op  V allocs/op  custom...]";
// the -P GOMAXPROCS suffix is stripped so names match baseline keys.
func parseBench(r io.Reader) ([]measurement, error) {
	var out []measurement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		m := measurement{name: stripProcs(f[0])}
		seen := false
		// Fields after the iteration count come in (value, unit) pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), f[i])
			}
			switch f[i+1] {
			case "ns/op":
				m.ns, seen = v, true
			case "B/op":
				m.bytes, m.hasMem = v, true
			case "allocs/op":
				m.allocs, m.hasMem = v, true
			}
		}
		if seen {
			out = append(out, m)
		}
	}
	return out, sc.Err()
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo/sub-8" → "BenchmarkFoo/sub").
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func gate(bl *baseline, ms []measurement, maxRegress, minNs float64) []string {
	var failures, unknown []string
	for _, m := range ms {
		base, ok := bl.Benchmarks[m.name]
		if !ok {
			unknown = append(unknown, m.name)
			continue
		}
		switch {
		case base.NsPerOp < minNs:
			fmt.Printf("ok\t%s: %.4g ns/op (baseline %.4g below %.4g ns gating floor)\n",
				m.name, m.ns, base.NsPerOp, minNs)
		case m.ns > base.NsPerOp*(1+maxRegress):
			failures = append(failures, fmt.Sprintf(
				"%s: %.4g ns/op exceeds baseline %.4g by %+.1f%% (budget %+.0f%%)",
				m.name, m.ns, base.NsPerOp, 100*(m.ns/base.NsPerOp-1), 100*maxRegress))
		default:
			fmt.Printf("ok\t%s: %.4g ns/op vs baseline %.4g (%+.1f%%)\n",
				m.name, m.ns, base.NsPerOp, 100*(m.ns/base.NsPerOp-1))
		}
		if !m.hasMem {
			continue // no -benchmem columns: nothing to check allocs against
		}
		if base.AllocsPerOp == 0 && m.allocs > 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: %g allocs/op on a 0-alloc path (baseline pins 0)", m.name, m.allocs))
		} else if m.allocs > base.AllocsPerOp {
			fmt.Printf("warn\t%s: allocs/op %g > baseline %g (not gated; ns/op budget bounds it)\n",
				m.name, m.allocs, base.AllocsPerOp)
		}
	}
	sort.Strings(unknown)
	for _, n := range unknown {
		fmt.Printf("new\t%s: not in baseline (add it with -update against a baseline that lists it)\n", n)
	}
	return failures
}

// updateBaseline rewrites the measured fields of entries present in the
// input, leaving annotations and unrelated top-level fields untouched.
func updateBaseline(path string, bl *baseline, ms []measurement) error {
	for _, m := range ms {
		e, ok := bl.Benchmarks[m.name]
		if !ok {
			e = entry{}
		}
		e.NsPerOp = m.ns
		if m.hasMem {
			e.BytesPerOp = m.bytes
			e.AllocsPerOp = m.allocs
		}
		bl.Benchmarks[m.name] = e
	}
	enc, err := json.MarshalIndent(bl.Benchmarks, "  ", "  ")
	if err != nil {
		return err
	}
	bl.raw["benchmarks"] = enc
	// Rebuild the file in a stable key order: metadata first, then the
	// benchmark table, then anything else (e.g. end_to_end notes).
	keys := make([]string, 0, len(bl.raw))
	for k := range bl.raw {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keyRank(keys[a]) < keyRank(keys[b]) })
	var buf strings.Builder
	buf.WriteString("{\n")
	for i, k := range keys {
		kj, _ := json.Marshal(k)
		buf.WriteString("  " + string(kj) + ": " + strings.TrimSpace(string(bl.raw[k])))
		if i < len(keys)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("}\n")
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

func keyRank(k string) string {
	order := map[string]string{
		"description": "0", "captured_at": "1", "machine": "2",
		"command": "3", "benchmarks": "4",
	}
	if r, ok := order[k]; ok {
		return r
	}
	return "9" + k
}
