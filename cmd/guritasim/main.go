// Command guritasim runs one scheduling scenario and prints JCT statistics,
// overall and per Table 1 size category.
//
// Synthetic workloads (the default and -bursty modes) run through the
// campaign engine: with -scheduler all the per-scheduler runs execute on
// -parallel workers, and -cache DIR persists every finished run so repeat
// invocations (and interrupted ones) skip straight to the results. Replayed
// trace files (-trace) and utilization probes (-util) stay on the direct
// serial path: the former's workload lives outside the declarative spec,
// the latter's probe is stateful.
//
// Usage:
//
//	guritasim -scheduler gurita -structure fb-tao -jobs 100 -k 8 -seed 1
//	guritasim -scheduler all -structure tpc-ds -bursty -parallel 8 -cache .gurita-cache
//	guritasim -scheduler pfs -trace FB2010-1Hr-150-0.txt   # real trace replay
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"sort"

	gurita "gurita"
	"gurita/internal/cliflags"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "guritasim:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			fmt.Fprintln(os.Stderr, "run 'guritasim -h' for flag usage")
		}
		os.Exit(1)
	}
}

// usageError marks errors caused by bad invocation (invalid flag values,
// malformed configuration) so main can point at -h; simulation failures
// print without the hint.
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

func badUsage(format string, args ...any) error {
	return &usageError{fmt.Errorf(format, args...)}
}

func run() (err error) {
	var (
		schedName = flag.String("scheduler", "gurita", `scheduler: gurita, gurita+, pfs, baraat, stream, aalo, or "all"`)
		structure = flag.String("structure", "fb-tao", "job DAG structure: single, fb-tao, tpc-ds, mixed")
		jobs      = flag.Int("jobs", 100, "number of jobs")
		k         = flag.Int("k", 8, "FatTree pod count (8 => 128 servers/80 switches)")
		topoKind  = flag.String("topo", "fattree", "fabric: fattree, leafspine, bigswitch")
		oversub   = flag.Float64("oversub", 1, "fabric oversubscription ratio (fattree only)")
		seed      = flag.Int64("seed", 1, "workload seed")
		bursty    = flag.Bool("bursty", false, "bursty arrivals (2 µs bursts) instead of trace-like arrivals")
		traceFile = flag.String("trace", "", "replay a coflow-benchmark trace file instead of synthesizing")
		queues    = flag.Int("queues", 4, "priority queues")
		timeScale = flag.Float64("timescale", 0.1, "arrival compression for trace-like runs")
		util      = flag.Bool("util", false, "sample and print fabric utilization (forces the serial path)")
		taskDeps  = flag.Bool("taskdeps", false, "task-level DAG release (pipelined stages)")
		jsonOut   = flag.String("json", "", "write per-job results as JSON to this file")
		emitGrid  = flag.String("emit-grid", "", "write the campaign's trial-spec grid as JSON to this file and exit (feed it to guritaworker -grid)")

		// Shared flag groups (identical across gurita commands): the campaign
		// pool/cache group, profiling (-trace is taken by trace replay, so the
		// runtime/trace flag is -exectrace everywhere), fault injection, and
		// observability.
		campaign = cliflags.RegisterCampaign(flag.CommandLine, "runs")
		leaseFl  = cliflags.RegisterLease(flag.CommandLine, true)
		profFl   = cliflags.RegisterProf(flag.CommandLine)
		faults   = cliflags.RegisterFaults(flag.CommandLine)
		obsFl    = cliflags.RegisterObs(flag.CommandLine, "(serial runs: always; campaign runs: on failure)")
	)
	flag.Parse()

	// Which flags were given explicitly (vs defaulted): some combinations
	// only make sense together, and a silently ignored flag is a lie.
	setFlags := cliflags.Set(flag.CommandLine)
	// Trace replays and utilization probes run on the direct serial path;
	// campaign-only flags contradict them.
	serial := *traceFile != "" || *util

	switch {
	case *jobs < 1:
		return badUsage("-jobs must be >= 1, got %d", *jobs)
	case *k < 2:
		return badUsage("-k must be >= 2 (it sizes the fabric), got %d", *k)
	case *queues < 1:
		return badUsage("-queues must be >= 1, got %d", *queues)
	case !(*timeScale > 0) || math.IsInf(*timeScale, 0):
		return badUsage("-timescale must be a positive compression factor, got %v", *timeScale)
	case *oversub < 1 || math.IsNaN(*oversub) || math.IsInf(*oversub, 0):
		return badUsage("-oversub must be a finite ratio >= 1, got %v", *oversub)
	case serial && campaign.CacheDir != "":
		return badUsage("-cache only applies to synthetic campaign runs; -trace and -util run serially and uncached")
	case serial && setFlags("parallel"):
		return badUsage("-parallel only applies to synthetic campaign runs; -trace and -util run serially")
	case serial && obsFl.Listen != "":
		return badUsage("-obs-listen serves campaign introspection; -trace and -util run serially")
	case serial && leaseFl.External:
		return badUsage("-workers-external only applies to synthetic campaign runs; -trace and -util run serially")
	case serial && *emitGrid != "":
		return badUsage("-emit-grid exports the campaign grid; -trace and -util have none")
	}
	if err := campaign.Validate(); err != nil {
		return &usageError{err}
	}
	if err := leaseFl.Validate(setFlags, campaign); err != nil {
		return &usageError{err}
	}
	if err := faults.Validate(setFlags); err != nil {
		return &usageError{err}
	}
	if *schedName != "all" {
		known := false
		for _, kind := range gurita.AllKinds() {
			if gurita.SchedulerKind(*schedName) == kind {
				known = true
				break
			}
		}
		if !known {
			return badUsage("unknown -scheduler %q; valid: %v or \"all\"", *schedName, gurita.AllKinds())
		}
	}
	fSeed := faults.SeedOr(*seed)

	stopProf, err := profFl.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var tp *gurita.Topology
	switch *topoKind {
	case "fattree":
		if *oversub > 1 {
			tp, err = gurita.FatTreeOversub(*k, 0, *oversub)
		} else {
			tp, err = gurita.FatTree(*k, 0)
		}
	case "leafspine":
		// k pods worth of hosts arranged as k leaves × k*k/4 hosts each...
		// keep it simple: k leaves, k/2 spines, 16 hosts per leaf.
		tp, err = gurita.LeafSpine(*k, *k/2, 16, 0, 0)
	case "bigswitch":
		tp, err = gurita.BigSwitch(*k**k**k/4, 0)
	default:
		return badUsage("unknown -topo %q; valid: fattree, leafspine, bigswitch", *topoKind)
	}
	if err != nil {
		// The fabric constructors reject invalid sizes (e.g. odd FatTree k)
		// with a descriptive error; it is an invocation problem.
		return &usageError{err}
	}

	st, err := parseStructure(*structure)
	if err != nil {
		return badUsage("%v; valid -structure values: single, fb-tao, tpc-ds, mixed", err)
	}

	kinds := []gurita.SchedulerKind{gurita.SchedulerKind(*schedName)}
	if *schedName == "all" {
		kinds = gurita.AllKinds()
	}

	jsonName := func(kind gurita.SchedulerKind) string {
		if len(kinds) > 1 {
			return fmt.Sprintf("%s.%s", *jsonOut, kind)
		}
		return *jsonOut
	}

	// Synthetic workloads are fully described by a TrialSpec, so they run
	// through the campaign engine; trace replays and utilization probes
	// cannot (external file / stateful probe) and stay serial.
	if *traceFile == "" && !*util {
		scale := gurita.Scale{Seed: *seed}
		scenario := gurita.CampaignTrace
		if *bursty {
			scenario = gurita.CampaignBursty
			scale.BurstyJobs = *jobs
			scale.BurstyFatTreeK = *k
			scale.BurstSize = 20
		} else {
			scale.TraceCoflows = *jobs
			scale.FatTreeK = *k
			scale.MaxSenders = 6
			scale.MaxReducers = 3
			scale.TraceTimeScale = *timeScale
		}
		specs := make([]gurita.TrialSpec, len(kinds))
		for i, kind := range kinds {
			specs[i] = gurita.TrialSpec{
				Scheduler:             kind,
				Scenario:              scenario,
				Structure:             st,
				Scale:                 scale,
				Queues:                *queues,
				TaskLevelDependencies: *taskDeps,
				Topo:                  *topoKind,
				Oversub:               *oversub,
				Faults:                faultProfile(faults.Rate, faults.MTTR, fSeed),
				CheckInvariants:       faults.Check,
			}
		}
		if *emitGrid != "" {
			// The exported grid is what this invocation would run — workers
			// fed the file compute the same cache keys and grid hash.
			return writeGrid(*emitGrid, specs)
		}
		inspect, progress, err := obsFl.Introspection(cliflags.ProgressPrinter("runs"))
		if err != nil {
			return err
		}
		if inspect != nil {
			defer inspect.Close()
		}
		results, stats, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{
			Workers:  campaign.Parallel,
			CacheDir: campaign.CacheDir,
			CacheURL: campaign.CacheURL,
			Force:    campaign.Force,
			// Coflow rows ride along so -json output carries avg_cct exactly
			// as the serial path writes it.
			IncludeCoflows: true,
			Progress:       progress,
			TrialTimeout:   campaign.TrialTimeout,
			ObsTraceDir:    obsFl.TraceDir,
			ObsDumpDir:     obsFl.DumpDir,
			MultiProcess:   leaseFl.Options(),
		})
		if inspect != nil {
			inspect.Finish(stats)
		}
		if err != nil {
			return err
		}
		if faults.Rate > 0 {
			fmt.Printf("faults: %g link failures/s, MTTR %gs, seed %d\n", faults.Rate, faults.MTTR, fSeed)
		}
		fmt.Printf("fabric: %v, jobs: %d, structure: %v\n\n", tp, len(results[0].Jobs), st)
		for i, kind := range kinds {
			printResult(results[i])
			if *jsonOut != "" {
				if err := writeJSON(jsonName(kind), results[i]); err != nil {
					return err
				}
			}
		}
		return nil
	}

	var workload []*gurita.Job
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		racks, specs, err := gurita.ParseTrace(f)
		if err != nil {
			return err
		}
		if *jobs < len(specs) {
			specs = specs[:*jobs]
		}
		workload, err = gurita.GraftTrace(specs, racks, gurita.GraftConfig{
			Structure: st, Servers: tp.NumServers(), Seed: *seed, TimeScale: *timeScale,
		})
		if err != nil {
			return err
		}
	case *bursty:
		workload, err = gurita.GenerateWorkload(gurita.WorkloadConfig{
			NumJobs: *jobs, Seed: *seed, Servers: tp.NumServers(), Structure: st,
			Arrival: &gurita.BurstyArrivals{BurstSize: 20, IntraGap: 2e-6, InterGap: 5},
		})
		if err != nil {
			return err
		}
	default:
		specs := gurita.SynthesizeTrace(*jobs, 150, *seed)
		workload, err = gurita.GraftTrace(specs, 150, gurita.GraftConfig{
			Structure: st, Servers: tp.NumServers(), Seed: *seed, TimeScale: *timeScale,
			MaxSenders: 6, MaxReducers: 3,
		})
		if err != nil {
			return err
		}
	}

	sc := gurita.Scenario{
		Topology:              tp,
		Jobs:                  workload,
		Queues:                *queues,
		TaskLevelDependencies: *taskDeps,
		CheckInvariants:       faults.Check,
	}
	if p := faultProfile(faults.Rate, faults.MTTR, fSeed); p != nil {
		sc.Faults, err = p.Generate(tp)
		if err != nil {
			return err
		}
		fmt.Printf("faults: %g link failures/s, MTTR %gs, seed %d (%d events)\n",
			faults.Rate, faults.MTTR, fSeed, len(sc.Faults.Events))
	}

	for _, dir := range []string{obsFl.TraceDir, obsFl.DumpDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}

	fmt.Printf("fabric: %v, jobs: %d, structure: %v\n\n", tp, len(workload), st)
	for _, kind := range kinds {
		var uc *gurita.UtilizationCollector
		if *util {
			uc = gurita.NewUtilizationCollector(tp)
			sc.Probe = uc.Probe
		}
		var (
			col   *gurita.ObsCollector
			ring  *gurita.FlightRecorder
			sinks []gurita.ObsSink
		)
		if obsFl.TraceDir != "" {
			col = gurita.NewObsCollector()
			sinks = append(sinks, col)
		}
		if obsFl.DumpDir != "" {
			ring = gurita.NewFlightRecorder(0)
			sinks = append(sinks, ring)
		}
		if len(sinks) > 0 {
			sc.Obs = gurita.ObsTee(sinks...)
		}
		runCtx, cancel := ctx, context.CancelFunc(func() {})
		if campaign.TrialTimeout > 0 {
			runCtx, cancel = context.WithTimeout(ctx, campaign.TrialTimeout)
		}
		sc.Interrupt = runCtx.Err
		res, err := sc.Run(kind)
		cancel()
		// -obs-dump on the serial path is the on-demand dump: it is written
		// whether the run finished or failed, so a crashed run still leaves
		// its trailing event window behind.
		if ring != nil {
			if derr := writeObsDump(obsFl.DumpDir, string(kind), ring); derr != nil && err == nil {
				err = derr
			}
		}
		if err != nil {
			return err
		}
		if col != nil {
			if err := writeObsTrace(obsFl.TraceDir, string(kind), col); err != nil {
				return err
			}
		}
		printResult(res)
		if uc != nil {
			fmt.Printf("utilization: host %.1f%%, fabric %.1f%%, peak link %.0f%% (%d samples)\n\n",
				100*uc.HostUtilization(), 100*uc.FabricUtilization(),
				100*uc.PeakLinkUtilization(), uc.Samples())
		}
		if *jsonOut != "" {
			if err := writeJSON(jsonName(kind), res); err != nil {
				return err
			}
		}
	}
	return nil
}

// faultProfile builds the CLI's fault profile: Poisson link failures at the
// given fabric-wide rate with exponential repair. Nil when rate is 0.
func faultProfile(rate, mttr float64, seed int64) *gurita.FaultProfile {
	if rate <= 0 {
		return nil
	}
	return &gurita.FaultProfile{
		Seed:         seed,
		Horizon:      60,
		MTTR:         mttr,
		LinkFailRate: rate,
	}
}

// writeObsTrace exports one serial run's recording as Chrome trace_event
// JSON named after its scheduler.
func writeObsTrace(dir, kind string, col *gurita.ObsCollector) error {
	f, err := os.Create(filepath.Join(dir, kind+".trace.json"))
	if err != nil {
		return err
	}
	if err := gurita.ExportChromeTrace(f, kind, col); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeObsDump writes one serial run's flight-recorder window as JSONL.
func writeObsDump(dir, kind string, ring *gurita.FlightRecorder) error {
	f, err := os.Create(filepath.Join(dir, kind+".dump.jsonl"))
	if err != nil {
		return err
	}
	if err := ring.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeGrid exports the campaign grid as a JSON array of trial specs, the
// format guritaworker -grid consumes.
func writeGrid(name string, specs []gurita.TrialSpec) error {
	data, err := json.MarshalIndent(specs, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(name, append(data, '\n'), 0o644)
}

func writeJSON(name string, res *gurita.Result) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := gurita.WriteResultJSON(f, res, false); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseStructure(s string) (gurita.Structure, error) {
	switch s {
	case "single":
		return gurita.StructureSingle, nil
	case "fb-tao":
		return gurita.StructureFBTao, nil
	case "tpc-ds":
		return gurita.StructureTPCDS, nil
	case "mixed":
		return gurita.StructureMixed, nil
	default:
		return 0, fmt.Errorf("unknown structure %q", s)
	}
}

func printResult(res *gurita.Result) {
	all := gurita.Summarize(gurita.JCTs(res))
	fmt.Printf("=== %s: %d jobs, avg JCT %.3fs, median %.3fs, p95 %.3fs (%d events)\n",
		res.Scheduler, all.Count, all.Mean, all.Median, all.P95, res.Events)

	byCat := make(map[gurita.Category][]float64)
	for _, j := range res.Jobs {
		c := gurita.CategoryOf(j.TotalBytes)
		byCat[c] = append(byCat[c], j.JCT)
	}
	var cats []gurita.Category
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	rows := make([][]string, 0, len(cats))
	for _, c := range cats {
		s := gurita.Summarize(byCat[c])
		rows = append(rows, []string{
			c.String(),
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.3f", s.Mean),
			fmt.Sprintf("%.3f", s.Median),
			fmt.Sprintf("%.3f", s.P95),
		})
	}
	fmt.Println(gurita.RenderTable([]string{"cat", "jobs", "avg JCT", "median", "p95"}, rows))
}
