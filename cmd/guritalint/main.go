// Command guritalint is the repo's determinism-and-invariant lint suite:
// a multichecker over the analyzers in internal/lint (maprange,
// nondetsource, floatcmp, seedplumb, lockcheck, ctxflow, durability,
// allocbound, lintdirective). It makes the contracts that the replay,
// chaos, and benchmark harnesses enforce dynamically — delta≡batch
// byte-identity, fault-replay identity, content-addressed cache keys,
// crash-safe temp+fsync+rename writes, cancellable wait loops, and the
// 0 allocs/op hot path — into static build errors.
//
// Two modes:
//
//	guritalint [-maprange=false …] [packages]   # standalone; default ./...
//	go vet -vettool=$(which guritalint) ./...   # vet driver protocol
//
// Standalone exits 1 when it finds anything. Under go vet the tool speaks
// the (unpublished) vet command-line protocol: -flags prints its flag set
// as JSON, and each package arrives as a vet.cfg whose export data the go
// command has already compiled; diagnostics go to stderr and exit code 2
// marks findings, matching x/tools' unitchecker.
//
// Standalone mode additionally runs allocbound's escape gate: it recompiles
// the hot-path packages with -gcflags=-m and holds every //alloc:free
// function to the compiler's verdict. The vet driver skips the gate (one
// compile per vetted package would thrash the build); -escapes=false skips
// it standalone too, for a faster annotation-only pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gurita/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("guritalint", flag.ContinueOnError)
	printVersion := fs.String("V", "", "print version and exit (vet protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (vet protocol)")
	enabled := map[string]*bool{}
	for _, an := range lint.Analyzers() {
		enabled[an.Name] = fs.Bool(an.Name, true, an.Doc)
	}
	// Standalone-only; deliberately absent from the vet -flags handshake.
	escapes := fs.Bool("escapes", true, "run allocbound's -gcflags=-m escape gate (standalone mode only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *printVersion != "" {
		// The go command hashes this line into its action cache key.
		fmt.Println("guritalint version guritalint-1.0.0")
		return 0
	}
	if *printFlags {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, an := range lint.Analyzers() {
			out = append(out, jsonFlag{Name: an.Name, Bool: true, Usage: an.Doc})
		}
		data, _ := json.Marshal(out)
		fmt.Println(string(data))
		return 0
	}

	var analyzers []*lint.Analyzer
	for _, an := range lint.Analyzers() {
		if *enabled[an.Name] {
			analyzers = append(analyzers, an)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0], analyzers)
	}
	return runStandalone(rest, analyzers, *escapes && *enabled[lint.AllocBound.Name])
}

// runStandalone loads the named packages (default ./...) and reports every
// finding to stderr; exit 1 on findings, 2 on load failure.
func runStandalone(patterns []string, analyzers []*lint.Analyzer, escapeGate bool) int {
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "guritalint:", err)
		return 2
	}
	if escapeGate {
		// One escape set serves every package: generic hot-path code (the
		// slabs) reports its escapes from the instantiating package's
		// compilation, so the gate compiles the whole scope at once and
		// analyzers match diagnostics by source position.
		set, err := lint.CollectEscapes(".", lint.AllocGatePackages())
		if err != nil {
			fmt.Fprintln(os.Stderr, "guritalint:", err)
			return 2
		}
		for _, p := range pkgs {
			p.Escapes = set
		}
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "guritalint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "guritalint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runVet analyzes one package described by a go-vet config file.
func runVet(cfgPath string, analyzers []*lint.Analyzer) int {
	pkg, cfg, err := lint.LoadVetPackage(cfgPath)
	if err != nil {
		if cfg != nil && cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "guritalint:", err)
		return 1
	}
	if len(pkg.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		writeVetx(cfg)
		return 0
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "guritalint:", err)
		return 1
	}
	// The vetx facts file must exist for the go command's action cache
	// even though this suite exports no facts.
	writeVetx(cfg)
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func writeVetx(cfg *lint.VetConfig) {
	if cfg.VetxOutput != "" {
		_ = os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
	}
}
