// Command guritaworker is one worker process of a crash-tolerant
// multi-process campaign: it reads a trial-spec grid (the JSON file
// guritasim -emit-grid writes), claims trials through crash-safe lease files
// under the shared -cache directory, executes what it wins, and serves the
// rest from peers' published results. Any number of workers pointed at the
// same grid and cache split the work; a SIGKILLed worker's in-flight trials
// go stale and are reclaimed by survivors after -lease-ttl, so the fleet as
// a whole finishes the grid with results byte-identical to a serial run.
//
// With -cache-url instead of -cache, the shared cache is a guritad daemon's
// /v1/cache/ API: workers need no shared filesystem at all, leases live in
// the daemon (whose clock is authoritative), and everything else — splitting,
// reclaim, byte-identical convergence — works the same across machines.
//
// Each worker writes a per-owner manifest shard under <cache>/manifests/
// accounting for what it executed, retried, and reclaimed; merge the shards
// with the library's runner.MergeWorkerManifests (the guritachaos harness
// does this to audit a fleet).
//
// Usage:
//
//	guritasim -scheduler all -jobs 50 -k 4 -emit-grid grid.json
//	guritaworker -grid grid.json -cache /shared/cache &   # repeat per worker
//	guritaworker -grid grid.json -cache /shared/cache -json-dir out/
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	gurita "gurita"
	"gurita/internal/cliflags"
	"gurita/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed by the FlagSet
		}
		fmt.Fprintln(os.Stderr, "guritaworker:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			fmt.Fprintln(os.Stderr, "run 'guritaworker -h' for flag usage")
		}
		os.Exit(1)
	}
}

// usageError marks bad-invocation errors so main can point at -h.
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

func badUsage(format string, args ...any) error {
	return &usageError{fmt.Errorf(format, args...)}
}

// run is main minus the process plumbing: it parses args on its own FlagSet
// (so tests can drive several workers inside one process) and returns rather
// than exits. The named return lets the profiler-stop defer surface flush
// errors from otherwise-successful runs.
func run(args []string) (err error) {
	fs := flag.NewFlagSet("guritaworker", flag.ContinueOnError)
	var (
		gridFile = fs.String("grid", "", "trial-spec grid to execute, a JSON array of specs (see guritasim -emit-grid); required")
		jsonDir  = fs.String("json-dir", "", "write each trial's result as trial-NNNN.json under this directory (same bytes as guritasim -json)")
		retries  = fs.Int("retries", 0, "re-run transiently failed trials up to this many extra times with backoff")
		keepOn   = fs.Bool("continue-on-error", true, "degrade past failed trials into the manifest instead of aborting the grid")
		quiet    = fs.Bool("quiet", false, "suppress the progress line")

		campaign = cliflags.RegisterCampaign(fs, "trials")
		leaseFl  = cliflags.RegisterLease(fs, false)
		profFl   = cliflags.RegisterProf(fs)
		obsFl    = cliflags.RegisterObs(fs, "for failed trials")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	setFlags := cliflags.Set(fs)

	switch {
	case *gridFile == "":
		return badUsage("-grid FILE is required: the worker needs the grid it is splitting")
	case *retries < 0:
		return badUsage("-retries must be >= 0, got %d", *retries)
	}
	if err := campaign.Validate(); err != nil {
		return &usageError{err}
	}
	// The lease group is always-on here (no -workers-external switch), so
	// its validation enforces the cache requirement and tuning sanity.
	if err := leaseFl.Validate(setFlags, campaign); err != nil {
		return &usageError{err}
	}

	data, err := os.ReadFile(*gridFile)
	if err != nil {
		return err
	}
	var specs []gurita.TrialSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return badUsage("parsing -grid %s: %v", *gridFile, err)
	}
	if len(specs) == 0 {
		return badUsage("-grid %s holds no trials", *gridFile)
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return badUsage("grid trial %d: %v", i, err)
		}
	}

	stopProf, err := profFl.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	mp := leaseFl.Options()
	mp.Registry = obs.NewSyncRegistry()
	owner := mp.Owner
	if owner == "" {
		owner = gurita.DefaultWorkerID()
		mp.Owner = owner
	}

	var progress func(gurita.CampaignProgress)
	if !*quiet {
		progress = cliflags.ProgressPrinter("trials")
	}
	inspect, progress, err := obsFl.Introspection(progress)
	if err != nil {
		return err
	}
	if inspect != nil {
		defer inspect.Close()
	}

	results, stats, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{
		Workers:  campaign.Parallel,
		CacheDir: campaign.CacheDir,
		CacheURL: campaign.CacheURL,
		// Coflow rows ride through the cache so every fleet member — and the
		// serial guritasim run a chaos audit compares against — shares one
		// schema and one set of cache keys.
		IncludeCoflows:  true,
		Progress:        progress,
		TrialTimeout:    campaign.TrialTimeout,
		Retries:         *retries,
		ContinueOnError: *keepOn,
		ObsTraceDir:     obsFl.TraceDir,
		ObsDumpDir:      obsFl.DumpDir,
		MultiProcess:    mp,
	})
	if inspect != nil {
		inspect.Finish(stats)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "guritaworker %s: %d trials — executed %d, cache %d, dedup %d, retries %d, reclaims %d\n",
		owner, stats.Total, stats.Executed, stats.CacheHits, stats.DedupHits, stats.Retries, stats.Reclaims)
	if n := len(stats.Failures); n > 0 {
		fmt.Fprintf(os.Stderr, "guritaworker %s: %d trials failed (see manifest shard)\n", owner, n)
	}

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			return err
		}
		for i, res := range results {
			if res == nil {
				continue
			}
			if err := writeResult(filepath.Join(*jsonDir, fmt.Sprintf("trial-%04d.json", i)), res); err != nil {
				return err
			}
		}
	}
	if len(stats.Failures) > 0 {
		return fmt.Errorf("%d of %d trials failed", len(stats.Failures), stats.Total)
	}
	return nil
}

// writeResult writes one trial's result document with the exact bytes
// guritasim -json produces for the same spec.
func writeResult(name string, res *gurita.Result) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := gurita.WriteResultJSON(f, res, false); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
