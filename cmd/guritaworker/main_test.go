package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	gurita "gurita"
	"gurita/internal/leakcheck"
)

// writeGrid emits an n-trial grid file in the shape `guritasim -emit-grid`
// produces, scaled small enough that a trial executes in milliseconds.
func writeGrid(t *testing.T, dir string, n int) string {
	t.Helper()
	scale := gurita.QuickScale()
	scale.TraceCoflows = 3
	scale.MaxSenders = 3
	scale.MaxReducers = 2
	specs := make([]gurita.TrialSpec, n)
	for i := range specs {
		s := scale
		s.Seed = int64(i + 1)
		specs[i] = gurita.TrialSpec{
			Scheduler: gurita.KindGurita,
			Scenario:  gurita.CampaignTrace,
			Structure: gurita.StructureFBTao,
			Scale:     s,
		}
	}
	data, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBadUsage: every bad invocation is a usageError (so main points at -h)
// whose message names the offending flag or file.
func TestBadUsage(t *testing.T) {
	dir := t.TempDir()
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing grid", nil, "-grid FILE is required"},
		{"negative retries", []string{"-grid", badJSON, "-cache", dir, "-retries", "-1"}, "-retries must be >= 0"},
		{"force fights leases", []string{"-grid", badJSON, "-cache", dir, "-force"}, "drop one of them"},
		{"unparsable grid", []string{"-grid", badJSON, "-cache", dir}, "parsing -grid"},
		{"empty grid", []string{"-grid", empty, "-cache", dir}, "holds no trials"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
			var ue *usageError
			if !errors.As(err, &ue) {
				t.Fatalf("run(%v) error %v is not a usageError", tc.args, err)
			}
		})
	}
}

// TestWorkersRaceOneCache runs two in-process workers over the same grid and
// shared cache — the unit-test shape of the CI chaos smoke, cheap enough for
// the race detector. Both must finish the whole grid, write byte-identical
// result JSON for every trial, and leave no lease files or goroutines behind.
func TestWorkersRaceOneCache(t *testing.T) {
	snap := leakcheck.Take()
	defer snap.Check(t)
	dir := t.TempDir()
	grid := writeGrid(t, dir, 3)
	cache := filepath.Join(dir, "cache")
	outs := []string{filepath.Join(dir, "out-a"), filepath.Join(dir, "out-b")}
	var wg sync.WaitGroup
	errs := make([]error, len(outs))
	for i, out := range outs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = run([]string{
				"-grid", grid, "-cache", cache, "-quiet",
				"-worker-id", fmt.Sprintf("w%d", i),
				"-parallel", "2", "-json-dir", out,
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("trial-%04d.json", i)
		a, err := os.ReadFile(filepath.Join(outs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(outs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 || !bytes.Equal(a, b) {
			t.Errorf("%s differs between workers (or is empty)", name)
		}
	}
	if entries, err := os.ReadDir(filepath.Join(cache, "leases")); err == nil && len(entries) > 0 {
		t.Errorf("leases dir not empty after a clean finish: %d entries", len(entries))
	}
}
