package gurita_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gurita "gurita"
)

// campaignGrid is a small scheduler × scenario × seed grid, big enough to
// exercise both workload families and out-of-order completion.
func campaignGrid() []gurita.TrialSpec {
	scale := gurita.QuickScale()
	scale.TraceCoflows = 8
	scale.BurstyJobs = 8
	scale.BurstSize = 4
	scale.MaxSenders = 3
	scale.MaxReducers = 2
	var specs []gurita.TrialSpec
	for _, scenario := range []gurita.CampaignScenario{gurita.CampaignTrace, gurita.CampaignBursty} {
		for _, kind := range []gurita.SchedulerKind{gurita.KindPFS, gurita.KindGurita} {
			for seed := int64(1); seed <= 2; seed++ {
				s := scale
				s.Seed = seed
				specs = append(specs, gurita.TrialSpec{
					Scheduler: kind,
					Scenario:  scenario,
					Structure: gurita.StructureFBTao,
					Scale:     s,
				})
			}
		}
	}
	return specs
}

// aggregateJSON renders a campaign's results as one deterministic JSON
// stream — the "aggregated output" the determinism guarantee is stated
// over.
func aggregateJSON(t *testing.T, results []*gurita.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if err := gurita.WriteResultJSON(&buf, r, false); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestCampaignDeterminismGolden: the same campaign run (a) serially, (b)
// with 8 workers, and (c) from a warm cache yields byte-identical
// aggregated JSON — and the warm run executes zero simulations.
func TestCampaignDeterminismGolden(t *testing.T) {
	ctx := context.Background()
	specs := campaignGrid()

	serial, stats, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != len(specs) || stats.CacheHits != 0 {
		t.Fatalf("serial stats = %+v", stats)
	}

	parallel, _, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cold, stats, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != len(specs) {
		t.Fatalf("cold cached run stats = %+v", stats)
	}
	warm, stats, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 || stats.CacheHits != len(specs) {
		t.Fatalf("warm run executed %d simulations, want 0 (stats %+v)", stats.Executed, stats)
	}

	golden := aggregateJSON(t, serial)
	for name, got := range map[string][]*gurita.Result{
		"parallel": parallel, "cold-cache": cold, "warm-cache": warm,
	} {
		if !bytes.Equal(golden, aggregateJSON(t, got)) {
			t.Fatalf("%s aggregated JSON differs from the serial run", name)
		}
	}
}

// TestCampaignForce re-executes everything over a warm cache.
func TestCampaignForce(t *testing.T) {
	ctx := context.Background()
	specs := campaignGrid()[:2]
	dir := t.TempDir()
	if _, _, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	_, stats, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{CacheDir: dir, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != len(specs) || stats.CacheHits != 0 {
		t.Fatalf("forced stats = %+v", stats)
	}
}

// TestCampaignCacheRobustness: corrupting cached campaign entries on disk
// downgrades them to misses; the campaign recomputes, overwrites, and still
// produces the identical aggregate.
func TestCampaignCacheRobustness(t *testing.T) {
	ctx := context.Background()
	specs := campaignGrid()[:4]
	dir := t.TempDir()
	first, _, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	golden := aggregateJSON(t, first)

	// Truncate one entry, garbage a second.
	var entries []string
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			entries = append(entries, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(specs) {
		t.Fatalf("cache holds %d entries, want %d", len(entries), len(specs))
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[1], []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	again, stats, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 2 || stats.CacheHits != 2 {
		t.Fatalf("after corruption stats = %+v, want 2 executed / 2 hits", stats)
	}
	if !bytes.Equal(golden, aggregateJSON(t, again)) {
		t.Fatal("recovered campaign aggregate differs")
	}
	// Healed: a third run is fully warm again.
	_, stats, err = gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 {
		t.Fatalf("cache not healed: %+v", stats)
	}
}

// TestCampaignCancellation: a canceled context aborts the campaign with
// ctx.Err and leaves completed trials in the cache for resume.
func TestCampaignCancellation(t *testing.T) {
	specs := campaignGrid()
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, _, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{
		Workers:  1,
		CacheDir: dir,
		Progress: func(p gurita.CampaignProgress) {
			n++
			if n == 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	results, stats, err := gurita.RunCampaign(context.Background(), specs, gurita.CampaignOptions{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits < 3 {
		t.Fatalf("resume found %d cached trials, want >= 3", stats.CacheHits)
	}
	if len(results) != len(specs) {
		t.Fatalf("resume returned %d results", len(results))
	}
}

// TestTrialSpecValidation: unknown scenario, topology, and scheduler fail
// cleanly.
func TestTrialSpecValidation(t *testing.T) {
	base := campaignGrid()[0]
	ctx := context.Background()

	bad := base
	bad.Scenario = "warp"
	if _, _, err := gurita.RunCampaign(ctx, []gurita.TrialSpec{bad}, gurita.CampaignOptions{}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	bad = base
	bad.Topo = "torus"
	if _, _, err := gurita.RunCampaign(ctx, []gurita.TrialSpec{bad}, gurita.CampaignOptions{}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	bad = base
	bad.Scheduler = "nope"
	if _, _, err := gurita.RunCampaign(ctx, []gurita.TrialSpec{bad}, gurita.CampaignOptions{}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

// TestTrialSpecTopologies: the alternative fabrics build and drain.
func TestTrialSpecTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	base := campaignGrid()[0] // trace, pfs, seed 1
	var specs []gurita.TrialSpec
	for _, topo := range []string{"fattree", "leafspine", "bigswitch"} {
		s := base
		s.Topo = topo
		specs = append(specs, s)
	}
	oversub := base
	oversub.Oversub = 4
	specs = append(specs, oversub)
	results, _, err := gurita.RunCampaign(context.Background(), specs, gurita.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if len(r.Jobs) == 0 {
			t.Fatalf("spec %d (%s) drained no jobs", i, specs[i].Topo)
		}
	}
}

// TestTrialSpecNormalization: specs that differ only in defaulted fields
// share a cache entry.
func TestTrialSpecNormalization(t *testing.T) {
	a := campaignGrid()[0]
	b := a
	b.Queues = 4
	b.Topo = "fattree"
	b.Oversub = 1
	b.Scale.Trials = 7 // ignored per-trial
	dir := t.TempDir()
	ctx := context.Background()
	if _, stats, err := gurita.RunCampaign(ctx, []gurita.TrialSpec{a}, gurita.CampaignOptions{CacheDir: dir}); err != nil || stats.Executed != 1 {
		t.Fatalf("first run: stats=%+v err=%v", stats, err)
	}
	_, stats, err := gurita.RunCampaign(ctx, []gurita.TrialSpec{b}, gurita.CampaignOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || stats.Executed != 0 {
		t.Fatalf("normalized spec missed the cache: %+v", stats)
	}
}
