package gurita

// White-box tests of the campaign obs plumbing: artifact naming and the
// failure-path flight-recorder dump, which black-box tests cannot reach
// without manufacturing a failing trial.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gurita/internal/obs"
)

func TestObsFileName(t *testing.T) {
	key := strings.Repeat("ab", 32)
	if got := obsFileName(key, ".trace.json"); got != key[:16]+".trace.json" {
		t.Fatalf("obsFileName = %q", got)
	}
	if got := obsFileName("short", ".dump.jsonl"); got != "short.dump.jsonl" {
		t.Fatalf("short key: %q", got)
	}
}

func TestDumpFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	ring := obs.NewRing(8)
	ring.Event(obs.Event{T: 0.5, Kind: obs.KindJobArrival, Job: 3})
	ring.Event(obs.Event{T: 0.7, Kind: obs.KindInvariant, Val: 1})
	dumpFlightRecorder(dir, "deadbeefdeadbeefcafe", ring)

	path := filepath.Join(dir, "deadbeefdeadbeef.dump.jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("dump missing: %v", err)
	}
	defer f.Close()
	evs, _, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Kind != obs.KindInvariant {
		t.Fatalf("dump events: %+v", evs)
	}

	// The dump is best-effort: an unwritable directory must not panic.
	dumpFlightRecorder(filepath.Join(dir, "missing", "nested"), "k", ring)
}
