package gurita

// This file is the observability facade: thin re-exports of internal/obs so
// adopters can record, dump, and export a run without importing internal
// packages. The subsystem is strictly observation-only — a Scenario runs the
// same trajectory byte-for-byte whether Scenario.Obs is nil, a flight
// recorder, or a full collector; sinks only watch.

import (
	"io"

	"gurita/internal/obs"
)

// DefaultFlightRecorderCap is the flight recorder capacity used when
// NewFlightRecorder is given a non-positive one (64Ki events).
const DefaultFlightRecorderCap = obs.DefaultRingCap

// NewFlightRecorder returns a fixed-capacity ring sink holding the most
// recent capacity events (and as many decisions): cheap enough to leave on
// for long campaigns, and dumped with WriteJSONL when a trial fails, an
// invariant trips, or -obs-dump asks for it. capacity <= 0 selects
// DefaultFlightRecorderCap.
func NewFlightRecorder(capacity int) *FlightRecorder {
	return obs.NewRing(capacity)
}

// NewObsCollector returns an unbounded in-memory sink retaining every event
// and decision, in emission order — the input for ExportChromeTrace.
func NewObsCollector() *ObsCollector {
	return &obs.Collector{}
}

// NewObsRegistry returns an empty counters/histograms registry to share
// across runs via Scenario.ObsRegistry.
func NewObsRegistry() *ObsRegistry {
	return obs.NewRegistry()
}

// ObsJSONL streams events and decisions to a writer as JSON Lines while the
// simulation runs; call Flush when done.
type ObsJSONL = obs.JSONL

// NewObsJSONL returns a streaming JSONL sink over w.
func NewObsJSONL(w io.Writer) *ObsJSONL {
	return obs.NewJSONL(w)
}

// ObsTee fans every event and decision out to each sink in order; nil sinks
// are skipped, and a tee of one sink is that sink.
func ObsTee(sinks ...ObsSink) ObsSink {
	return obs.Tee(sinks...)
}

// WriteChromeTrace renders one or more recorded runs as a Chrome trace_event
// JSON document loadable in Perfetto (ui.perfetto.dev) or chrome://tracing:
// one process per run, a thread per job plus a fabric thread, coflows as
// spans and stage/fault happenings as instants. Output is deterministic for
// identical inputs.
func WriteChromeTrace(w io.Writer, procs ...ObsTraceProcess) error {
	return obs.WriteChromeTrace(w, procs...)
}

// ExportChromeTrace is the one-run convenience over WriteChromeTrace: it
// wraps the collector's events as a single process named name.
func ExportChromeTrace(w io.Writer, name string, c *ObsCollector) error {
	return obs.WriteChromeTrace(w, obs.TraceProcess{Name: name, PID: 1, Events: c.Events()})
}

// ValidateChromeTrace structurally checks a trace_event JSON document: the
// required traceEvents array, known phase codes, and per-phase mandatory
// fields. It is the same check the CI smoke step runs on exported traces.
func ValidateChromeTrace(data []byte) error {
	return obs.ValidateChromeTrace(data)
}

// ReadObsJSONL parses a JSONL dump (from ObsJSONL or FlightRecorder
// WriteJSONL) back into events and decisions.
func ReadObsJSONL(r io.Reader) ([]ObsEvent, []ObsDecision, error) {
	return obs.ReadJSONL(r)
}
