package gurita_test

// Smoke tests for the paper-scale configuration: the 48-pod fabric (27648
// servers, 2880 switches, 165888 directed links) must be constructible and
// runnable. The full 10000-job Figure 7 run is gated behind
// GURITA_FULLSCALE=1; here we only prove the machinery carries the scale.

import (
	"testing"
	"time"

	gurita "gurita"
)

func TestPaperScaleFabricConstruction(t *testing.T) {
	tp, err := gurita.FatTree(48, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumServers() != 27648 || tp.NumSwitches() != 2880 || tp.NumLinks() != 165888 {
		t.Fatalf("48-pod fabric dims wrong: %v", tp)
	}
}

func TestPaperScaleFabricRunsJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("large-fabric allocation")
	}
	tp, err := gurita.FatTree(48, 0)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := gurita.GenerateWorkload(gurita.WorkloadConfig{
		NumJobs:   25,
		Seed:      5,
		Servers:   tp.NumServers(),
		Structure: gurita.StructureFBTao,
		Arrival:   &gurita.BurstyArrivals{BurstSize: 5, IntraGap: 2e-6, InterGap: 1},
		CategoryWeights: [gurita.NumCategories]float64{
			0.6, 0.3, 0.1, 0, 0, 0, 0,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore nondetsource wall-clock measures this test's own throughput floor; trial results depend only on the spec
	start := time.Now()
	res, err := gurita.Scenario{Topology: tp, Jobs: jobs}.Run(gurita.KindGurita)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 25 {
		t.Fatalf("drained %d/25 jobs on the 48-pod fabric", len(res.Jobs))
	}
	// Throughput floor: the hot-path engine rewrite (calendar queue, slab
	// state, compacted water-fill) runs this smoke at ~31k events/sec on the
	// 1-CPU development container (420 events, ~14 ms). The floor sits >15×
	// below that so only a wholesale engine regression — not machine
	// variance on a milliseconds-long sample — can trip it.
	const floorEventsPerSec = 2_000
	evps := float64(res.Events) / elapsed.Seconds()
	t.Logf("48-pod smoke: %d events in %v (%.0f events/sec)", res.Events, elapsed, evps)
	if evps < floorEventsPerSec {
		t.Errorf("48-pod smoke ran at %.0f events/sec, floor is %d — the hot path has regressed wholesale",
			evps, floorEventsPerSec)
	}
}

func TestPaperScaleConfigConsistency(t *testing.T) {
	ps := gurita.PaperScale()
	if ps.BurstyFatTreeK != 48 || ps.BurstyJobs != 10000 {
		t.Fatalf("paper scale = %+v, want 48-pod / 10000 jobs", ps)
	}
	if ps.FatTreeK != 8 {
		t.Fatalf("paper-scale trace fabric k = %d, want 8", ps.FatTreeK)
	}
}
