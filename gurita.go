// Package gurita is a from-scratch reproduction of "A Near Optimal
// Multi-Faced Job Scheduler for Datacenter Workloads" (ICDCS 2019): the
// Gurita coflow scheduler for multi-stage (DAG-structured) datacenter jobs,
// together with the full evaluation stack the paper runs on — a flow-level
// datacenter simulator with FatTree/ECMP fabrics, SPQ/WRR priority data
// planes, the PFS / Baraat / Stream / Aalo comparison schedulers, workload
// generators replaying Facebook-trace-shaped coflows under TPC-DS and
// FB-Tao DAG structures, and a benchmark harness regenerating every figure
// and table of the paper's evaluation.
//
// # Quick start
//
//	tp, _ := gurita.FatTree(8, 0)                       // 128 hosts, 10G
//	jobs, _ := gurita.GenerateWorkload(gurita.WorkloadConfig{
//	    NumJobs: 100, Seed: 1, Servers: tp.NumServers(),
//	})
//	res, _ := gurita.Scenario{Topology: tp, Jobs: jobs}.Run(gurita.KindGurita)
//	fmt.Println(res.AvgJCT())
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package gurita

import (
	"fmt"
	"io"
	"sync"

	"gurita/internal/coflow"
	"gurita/internal/core"
	"gurita/internal/faults"
	"gurita/internal/metrics"
	"gurita/internal/netmod"
	"gurita/internal/obs"
	"gurita/internal/sched"
	"gurita/internal/sim"
	"gurita/internal/topo"
	"gurita/internal/workload"
)

// Re-exported model types. The library's working vocabulary: jobs are DAGs
// of coflows built with a Builder, run on a Topology by a Scheduler.
type (
	// Job is a multi-stage job: a DAG of coflows.
	Job = coflow.Job
	// JobID identifies a job.
	JobID = coflow.JobID
	// Coflow is a set of flows with all-or-nothing completion semantics.
	Coflow = coflow.Coflow
	// CoflowID identifies a coflow.
	CoflowID = coflow.CoflowID
	// FlowSpec describes one flow when building jobs.
	FlowSpec = coflow.FlowSpec
	// JobBuilder assembles and validates job DAGs.
	JobBuilder = coflow.Builder

	// Topology is a datacenter fabric (FatTree or big switch).
	Topology = topo.Topology
	// ServerID identifies an end host.
	ServerID = topo.ServerID

	// Scheduler is the policy interface; implement it to plug in your own
	// scheme (see examples/customsched).
	Scheduler = sim.Scheduler
	// SchedulerEnv is passed to Scheduler.Init.
	SchedulerEnv = sim.Env
	// FlowState, CoflowState and JobState are the runtime views schedulers
	// receive.
	FlowState   = sim.FlowState
	CoflowState = sim.CoflowState
	JobState    = sim.JobState

	// Result is a finished run; JobResult and CoflowResult are its rows.
	Result       = sim.Result
	JobResult    = sim.JobResult
	CoflowResult = sim.CoflowResult

	// GuritaConfig tunes the Gurita scheduler (δ, γ constant, thresholds,
	// critical-path discount, oracle mode).
	GuritaConfig = core.Config

	// FaultSchedule is a deterministic, time-ordered list of fault events
	// injected into a run (link/switch failures and repairs, NIC
	// degradation, control-plane faults). Build one from a FaultProfile,
	// load it with LoadFaultSchedule, or assemble FaultEvents by hand.
	FaultSchedule = faults.Schedule
	// FaultEvent is one entry of a FaultSchedule.
	FaultEvent = faults.Event
	// FaultKind names a fault event class.
	FaultKind = faults.Kind
	// FaultProfile generates a reproducible FaultSchedule from per-class
	// Poisson rates, a mean time to repair, and a seed.
	FaultProfile = faults.Profile

	// WorkloadConfig drives the synthetic workload generator.
	WorkloadConfig = workload.Config

	// ObsSink receives simulation events and scheduler decisions when a
	// Scenario runs with observability enabled (Scenario.Obs). Built-in
	// sinks: NewFlightRecorder (fixed-capacity ring), NewObsCollector
	// (unbounded, for tests and trace export), NewObsJSONL (streaming),
	// and ObsTee to fan out to several at once.
	ObsSink = obs.Sink
	// ObsEvent is one recorded simulation event (virtual-time stamped).
	ObsEvent = obs.Event
	// ObsDecision is one scheduler decision audit record.
	ObsDecision = obs.Decision
	// ObsKind classifies an ObsEvent.
	ObsKind = obs.Kind
	// ObsRegistry aggregates named counters and histograms during a run;
	// pass one as Scenario.ObsRegistry to share it across runs, or read the
	// per-run aggregation from Result.Counters.
	ObsRegistry = obs.Registry
	// FlightRecorder is the fixed-capacity in-memory ring of the most
	// recent ObsEvents, dumped on invariant violations or on demand.
	FlightRecorder = obs.Ring
	// ObsCollector retains every event and decision in memory.
	ObsCollector = obs.Collector
	// ObsTraceProcess groups one run's events into a named Chrome-trace
	// process for WriteChromeTrace.
	ObsTraceProcess = obs.TraceProcess
	// Category is one of Table 1's seven job-size classes.
	Category = metrics.Category
	// Summary is descriptive statistics over JCTs.
	Summary = metrics.Summary
)

// NewJobBuilder starts a job with the given ID and arrival time; pass
// shared counters to keep coflow/flow IDs unique across a workload (nil for
// standalone jobs).
func NewJobBuilder(id JobID, arrival float64, nextCoflowID *CoflowID, nextFlowID *FlowID) *JobBuilder {
	return coflow.NewBuilder(id, arrival, nextCoflowID, nextFlowID)
}

// FlowID identifies a flow.
type FlowID = coflow.FlowID

// FatTree builds a k-pod FatTree (k=8 → the paper's 128-server/80-switch
// fabric; k=48 → 27648 servers/2880 switches). capacity 0 means 10 GbE.
func FatTree(k int, capacity float64) (*Topology, error) {
	return topo.NewFatTree(k, capacity)
}

// FatTreeOversub builds a k-pod FatTree whose switch-to-switch links are
// oversubscribed by ratio (host links keep full capacity) — the tapered
// fabrics common in production, where contention and therefore scheduling
// pressure is higher than on the canonical non-blocking tree.
func FatTreeOversub(k int, capacity, ratio float64) (*Topology, error) {
	return topo.NewFatTreeOversub(k, capacity, ratio)
}

// LeafSpine builds a two-tier Clos fabric: leaves ToR switches with
// hostsPerLeaf servers each, meshed to spines spine switches. Capacities of
// 0 default to 10 GbE; uplinkCapacity 0 defaults to hostCapacity.
func LeafSpine(leaves, spines, hostsPerLeaf int, hostCapacity, uplinkCapacity float64) (*Topology, error) {
	return topo.NewLeafSpine(leaves, spines, hostsPerLeaf, hostCapacity, uplinkCapacity)
}

// BigSwitch builds the non-blocking fabric abstraction with n servers.
func BigSwitch(n int, capacity float64) (*Topology, error) {
	return topo.NewBigSwitch(n, capacity)
}

// Fault event kinds, re-exported for assembling FaultSchedules by hand. See
// the FaultEvent fields each kind consumes.
const (
	FaultLinkDown       = faults.LinkDown
	FaultLinkUp         = faults.LinkUp
	FaultSwitchDown     = faults.SwitchDown
	FaultSwitchUp       = faults.SwitchUp
	FaultNICDegrade     = faults.NICDegrade
	FaultNICRestore     = faults.NICRestore
	FaultCtrlDropRounds = faults.CtrlDropRounds
	FaultCtrlDelay      = faults.CtrlDelay
	FaultCtrlStaleHost  = faults.CtrlStaleHost
)

// LoadFaultSchedule reads a JSON fault schedule, as written by
// FaultSchedule.WriteJSON, from r.
func LoadFaultSchedule(r io.Reader) (*FaultSchedule, error) {
	return faults.ReadJSON(r)
}

// SchedulerKind names a built-in scheduling policy.
type SchedulerKind string

// Built-in schedulers.
const (
	// KindGurita is the paper's contribution: decentralized LBEF over
	// HR-estimated per-stage blocking effects, with WRR starvation
	// mitigation on the data plane.
	KindGurita SchedulerKind = "gurita"
	// KindGuritaPlus is the oracle variant (exact per-stage information,
	// instantaneous priority propagation).
	KindGuritaPlus SchedulerKind = "gurita+"
	// KindPFS is per-flow fair sharing (the baseline).
	KindPFS SchedulerKind = "pfs"
	// KindBaraat is FIFO with limited multiplexing (Dogar et al.).
	KindBaraat SchedulerKind = "baraat"
	// KindStream is decentralized TBS-threshold scheduling (Susanto et al.).
	KindStream SchedulerKind = "stream"
	// KindAalo is centralized D-CLAS with an instantaneous global view
	// (Chowdhury & Stoica).
	KindAalo SchedulerKind = "aalo"
	// KindVarys is the clairvoyant SEBF oracle (Chowdhury, Zhong & Stoica).
	// Not part of the paper's comparison set; included as an upper-bound
	// reference that knows every flow's remaining bytes.
	KindVarys SchedulerKind = "varys"
	// KindMCS schedules by observed width × largest flow — multi-attribute
	// like Gurita but stage-agnostic (the paper's reference [38]); the
	// ablation partner that isolates the depth dimension's contribution.
	KindMCS SchedulerKind = "mcs"
)

// AllKinds lists every built-in scheduler in the paper's comparison order,
// plus the Varys and MCS extensions.
func AllKinds() []SchedulerKind {
	return []SchedulerKind{KindPFS, KindBaraat, KindStream, KindAalo, KindGurita, KindGuritaPlus, KindVarys, KindMCS}
}

// NewScheduler constructs a built-in scheduler for the given queue count
// (the paper evaluates with 4).
func NewScheduler(kind SchedulerKind, queues int) (Scheduler, error) {
	switch kind {
	case KindGurita:
		return core.New(core.Config{}, queues)
	case KindGuritaPlus:
		return core.NewPlus(core.Config{}, queues)
	case KindPFS:
		return sched.NewPFS(), nil
	case KindBaraat:
		return sched.NewBaraat(sched.BaraatConfig{}), nil
	case KindStream:
		return sched.NewStream(sched.StreamConfig{}, queues)
	case KindAalo:
		return sched.NewAalo(sched.AaloConfig{}, queues)
	case KindVarys:
		return sched.NewVarys(), nil
	case KindMCS:
		return sched.NewMCS(sched.MCSConfig{}, queues)
	default:
		return nil, fmt.Errorf("gurita: unknown scheduler kind %q", kind)
	}
}

// NewAaloWithCoordination constructs an Aalo scheduler that pays a real
// coordination cost: byte counters reach the coordinator only every
// interval seconds (0 = the paper's free instantaneous view).
func NewAaloWithCoordination(interval float64, queues int) (Scheduler, error) {
	return sched.NewAalo(sched.AaloConfig{CoordinationInterval: interval}, queues)
}

// NewGurita constructs a Gurita scheduler with explicit configuration
// (ablations, δ sweeps, oracle mode).
func NewGurita(cfg GuritaConfig, queues int) (Scheduler, error) {
	if cfg.Oracle {
		return core.NewPlus(cfg, queues)
	}
	return core.New(cfg, queues)
}

// dataPlaneFor pairs each policy with its data plane: Gurita emulates SPQ
// with WRR for starvation mitigation (§IV.B); every compared scheme runs on
// plain strict priority queues, as in the paper's evaluation.
func dataPlaneFor(kind SchedulerKind) netmod.Mode {
	switch kind {
	case KindGurita, KindGuritaPlus:
		return netmod.ModeWRR
	default:
		return netmod.ModeSPQ
	}
}

// Scenario is one simulation setup: a fabric, a workload, and knobs shared
// by every scheduler so comparisons are apples-to-apples.
type Scenario struct {
	// Topology is required.
	Topology *Topology
	// Jobs is the workload (validated DAGs from JobBuilder or generators).
	Jobs []*Job
	// Queues is the number of priority queues (default 4).
	Queues int
	// Tick is the scheduler update interval δ in seconds (default 10 ms).
	Tick float64
	// StageDelay is the optional computation delay between stages.
	StageDelay float64
	// MaxEvents optionally bounds the run (safety net).
	MaxEvents int64
	// TaskLevelDependencies enables the paper's §I refinement: a parent
	// flow starts as soon as the child flows feeding its source server
	// complete, instead of waiting for whole child coflows (pipelined
	// stages, e.g. parallel-chain jobs).
	TaskLevelDependencies bool
	// Probe, when non-nil, is called roughly every Tick with the active
	// flows (instrumentation: see NewUtilizationCollector).
	Probe func(now float64, active []*FlowState)
	// TCPSlowStart enables the fluid slow-start model: per-flow rate caps
	// ramp from a 15 kB initial window, doubling per 100 µs RTT. Off by
	// default (steady-state TCP, as in the paper's simulator).
	TCPSlowStart bool
	// Faults injects a deterministic fault schedule into the run: link and
	// switch failures reroute flows over surviving ECMP paths (or stall them
	// with bounded retry), NIC degradations scale host capacity, and
	// control-plane faults starve decentralized schedulers of fresh
	// observations. Nil or empty leaves the fault-free trajectory untouched.
	Faults *FaultSchedule
	// CheckInvariants asserts engine invariants (rate conservation, no lost
	// flows, no traffic over failed links) after every fault instant.
	CheckInvariants bool
	// Interrupt, when non-nil, is polled periodically during the run; a
	// non-nil return aborts the simulation with that error wrapped. Use it
	// to honor context deadlines from campaign drivers.
	Interrupt func() error
	// Obs, when non-nil, receives every simulation event and scheduler
	// decision as the run unfolds (flight recorder, JSONL stream, trace
	// collector — see ObsSink). Nil keeps the hot path observation-free:
	// no events are constructed, no allocations happen. Sinks are
	// observation-only and never change the simulated trajectory.
	Obs ObsSink
	// ObsRegistry, when non-nil, receives the run's counters and
	// histograms in addition to Result.Counters (which is always
	// populated). Share one registry across runs to accumulate.
	ObsRegistry *ObsRegistry
}

// Run executes the scenario under a built-in scheduler, pairing it with its
// data plane (WRR for Gurita, SPQ for the rest).
func (sc Scenario) Run(kind SchedulerKind) (*Result, error) {
	s, err := NewScheduler(kind, sc.queues())
	if err != nil {
		return nil, err
	}
	return sc.RunWith(s, dataPlaneFor(kind) == netmod.ModeWRR)
}

// RunWith executes the scenario under a custom scheduler. wrr selects the
// WRR starvation-mitigation data plane instead of strict priority queuing.
func (sc Scenario) RunWith(s Scheduler, wrr bool) (*Result, error) {
	if sc.Topology == nil {
		return nil, fmt.Errorf("gurita: Scenario.Topology is required")
	}
	mode := netmod.ModeSPQ
	if wrr {
		mode = netmod.ModeWRR
	}
	dep := sim.DepCoflow
	if sc.TaskLevelDependencies {
		dep = sim.DepTask
	}
	simulator, err := sim.New(sim.Config{
		Topology:        sc.Topology,
		Queues:          sc.queues(),
		Mode:            mode,
		Tick:            sc.Tick,
		StageDelay:      sc.StageDelay,
		MaxEvents:       sc.MaxEvents,
		Dependency:      dep,
		Probe:           sc.Probe,
		TCPSlowStart:    sc.TCPSlowStart,
		Faults:          sc.Faults,
		CheckInvariants: sc.CheckInvariants,
		Interrupt:       sc.Interrupt,
		Obs:             sc.Obs,
		Registry:        sc.ObsRegistry,
	}, s, sc.Jobs)
	if err != nil {
		return nil, err
	}
	return simulator.Run()
}

func (sc Scenario) queues() int {
	if sc.Queues == 0 {
		return 4
	}
	return sc.Queues
}

// RunAll runs the scenario under several schedulers on the identical
// workload and returns results keyed by kind. The runs are independent
// (jobs are immutable descriptions; every run builds its own runtime
// state), so they execute in parallel; each individual run remains
// single-threaded and deterministic.
func (sc Scenario) RunAll(kinds ...SchedulerKind) (map[SchedulerKind]*Result, error) {
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	if sc.Probe != nil {
		// A probe (e.g. a UtilizationCollector) is typically stateful and
		// not safe to share across concurrent runs: fall back to sequential
		// execution.
		out := make(map[SchedulerKind]*Result, len(kinds))
		for _, k := range kinds {
			res, err := sc.Run(k)
			if err != nil {
				return nil, fmt.Errorf("gurita: running %s: %w", k, err)
			}
			out[k] = res
		}
		return out, nil
	}
	results := make([]*Result, len(kinds))
	errs := make([]error, len(kinds))
	var wg sync.WaitGroup
	for i, k := range kinds {
		wg.Add(1)
		go func(i int, k SchedulerKind) {
			defer wg.Done()
			res, err := sc.Run(k)
			if err != nil {
				errs[i] = fmt.Errorf("gurita: running %s: %w", k, err)
				return
			}
			results[i] = res
		}(i, k)
	}
	wg.Wait()
	out := make(map[SchedulerKind]*Result, len(kinds))
	for i, k := range kinds {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[k] = results[i]
	}
	return out, nil
}
