package gurita_test

// Testable godoc examples for the public API. Each runs as part of the test
// suite, so the documentation cannot rot.

import (
	"fmt"

	gurita "gurita"
)

// Example builds the paper's evaluation fabric, synthesizes a small
// trace-shaped workload, and compares Gurita with per-flow fair sharing.
func Example() {
	tp, err := gurita.FatTree(8, 0) // 128 servers, 80 switches, 10G
	if err != nil {
		panic(err)
	}
	specs := gurita.SynthesizeTrace(20, 150, 1)
	jobs, err := gurita.GraftTrace(specs, 150, gurita.GraftConfig{
		Structure:   gurita.StructureTPCDS,
		Servers:     tp.NumServers(),
		Seed:        1,
		MaxSenders:  4,
		MaxReducers: 2,
	})
	if err != nil {
		panic(err)
	}
	results, err := gurita.Scenario{Topology: tp, Jobs: jobs}.RunAll(
		gurita.KindPFS, gurita.KindGurita)
	if err != nil {
		panic(err)
	}
	imp := gurita.PairedImprovement(results[gurita.KindPFS], results[gurita.KindGurita])
	fmt.Println("every job finished under both schedulers:",
		len(results[gurita.KindPFS].Jobs) == 20 && len(results[gurita.KindGurita].Jobs) == 20)
	fmt.Println("Gurita at least matches PFS:", imp >= 1.0)
	// Output:
	// every job finished under both schedulers: true
	// Gurita at least matches PFS: true
}

// ExampleJobBuilder assembles a two-stage job by hand and inspects its
// structure.
func ExampleJobBuilder() {
	var cid gurita.CoflowID
	var fid gurita.FlowID
	b := gurita.NewJobBuilder(1, 0, &cid, &fid)
	shuffle := b.AddCoflow(
		gurita.FlowSpec{Src: 0, Dst: 4, Size: 100e6},
		gurita.FlowSpec{Src: 1, Dst: 5, Size: 200e6},
	)
	reduce := b.AddCoflow(gurita.FlowSpec{Src: 4, Dst: 8, Size: 50e6})
	b.Depends(reduce, shuffle)
	job, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println("stages:", job.NumStages)
	fmt.Println("total bytes:", job.TotalBytes())
	fmt.Println("category:", gurita.CategoryOf(job.TotalBytes()))
	// Output:
	// stages: 2
	// total bytes: 350000000
	// category: II
}

// ExampleCriticalCoflows finds the coflows whose delay would delay the
// whole job (Gurita's 4th rule).
func ExampleCriticalCoflows() {
	var cid gurita.CoflowID
	var fid gurita.FlowID
	b := gurita.NewJobBuilder(1, 0, &cid, &fid)
	heavy := b.AddCoflow(gurita.FlowSpec{Src: 0, Dst: 2, Size: 900e6})
	light := b.AddCoflow(gurita.FlowSpec{Src: 1, Dst: 3, Size: 10e6})
	root := b.AddCoflow(gurita.FlowSpec{Src: 2, Dst: 4, Size: 10e6})
	b.Depends(root, heavy)
	b.Depends(root, light)
	job, err := b.Build()
	if err != nil {
		panic(err)
	}
	crit := gurita.CriticalCoflows(job, 1.25e9)
	fmt.Println("heavy branch critical:", crit[job.Coflows[heavy].ID])
	fmt.Println("light branch critical:", crit[job.Coflows[light].ID])
	fmt.Println("root critical:", crit[job.Coflows[root].ID])
	// Output:
	// heavy branch critical: true
	// light branch critical: false
	// root critical: true
}

// ExampleScenario_RunWith plugs a custom scheduling policy into the
// simulator.
func ExampleScenario_RunWith() {
	tp, err := gurita.BigSwitch(8, 1e9)
	if err != nil {
		panic(err)
	}
	jobs, err := gurita.GenerateWorkload(gurita.WorkloadConfig{
		NumJobs: 5, Seed: 4, Servers: tp.NumServers(),
		CategoryWeights: [gurita.NumCategories]float64{1, 0, 0, 0, 0, 0, 0},
	})
	if err != nil {
		panic(err)
	}
	res, err := gurita.Scenario{Topology: tp, Jobs: jobs}.RunWith(allTop{}, false)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Scheduler, "finished", len(res.Jobs), "jobs")
	// Output:
	// all-top finished 5 jobs
}

// allTop is the simplest possible policy: everything at highest priority.
type allTop struct{}

func (allTop) Name() string                         { return "all-top" }
func (allTop) Init(gurita.SchedulerEnv)             {}
func (allTop) OnJobArrival(*gurita.JobState)        {}
func (allTop) OnCoflowStart(*gurita.CoflowState)    {}
func (allTop) OnCoflowComplete(*gurita.CoflowState) {}
func (allTop) OnJobComplete(*gurita.JobState)       {}
func (allTop) AssignQueues(_ float64, _, added, dirty []*gurita.FlowState) []*gurita.FlowState {
	for _, f := range added {
		f.SetQueue(0)
	}
	return dirty
}

// ExampleNewUtilizationCollector samples fabric load during a run.
func ExampleNewUtilizationCollector() {
	tp, err := gurita.BigSwitch(4, 100)
	if err != nil {
		panic(err)
	}
	var cid gurita.CoflowID
	var fid gurita.FlowID
	b := gurita.NewJobBuilder(1, 0, &cid, &fid)
	b.AddCoflow(gurita.FlowSpec{Src: 0, Dst: 1, Size: 1000})
	job, err := b.Build()
	if err != nil {
		panic(err)
	}
	uc := gurita.NewUtilizationCollector(tp)
	sc := gurita.Scenario{Topology: tp, Jobs: []*gurita.Job{job}, Probe: uc.Probe}
	if _, err := sc.Run(gurita.KindPFS); err != nil {
		panic(err)
	}
	fmt.Printf("host tier: %.0f%%, peak link: %.0f%%\n",
		100*uc.HostUtilization(), 100*uc.PeakLinkUtilization())
	// Output:
	// host tier: 25%, peak link: 100%
}
