package gurita_test

// BenchmarkRunnerParallelism measures the campaign engine's scaling on a
// small Figure 5-style grid (two scenarios × five schedulers × two seeds =
// 20 independent trials). Trials are embarrassingly parallel deterministic
// simulations, so wall-clock should shrink near-linearly with workers up to
// the core count; the workers=1 sub-benchmark is the serial baseline.
// Numbers are recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"

	gurita "gurita"
)

// runnerBenchGrid is the Fig. 5-style grid: trace + bursty scenarios under
// the full comparison scheduler set, two seeds each.
func runnerBenchGrid() []gurita.TrialSpec {
	scale := gurita.QuickScale()
	scale.TraceCoflows = 40
	scale.BurstyJobs = 40
	scale.BurstSize = 10
	kinds := []gurita.SchedulerKind{
		gurita.KindPFS, gurita.KindBaraat, gurita.KindStream, gurita.KindAalo, gurita.KindGurita,
	}
	var specs []gurita.TrialSpec
	for _, scenario := range []gurita.CampaignScenario{gurita.CampaignTrace, gurita.CampaignBursty} {
		for _, kind := range kinds {
			for seed := int64(1); seed <= 2; seed++ {
				s := scale
				s.Seed = seed
				specs = append(specs, gurita.TrialSpec{
					Scheduler: kind,
					Scenario:  scenario,
					Structure: gurita.StructureFBTao,
					Scale:     s,
				})
			}
		}
	}
	return specs
}

func BenchmarkRunnerParallelism(b *testing.B) {
	specs := runnerBenchGrid()
	ctx := context.Background()
	var serialNsPerOp float64
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, stats, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(specs) || stats.Executed != len(specs) {
					b.Fatalf("campaign ran %d/%d trials", stats.Executed, len(specs))
				}
			}
			b.ReportMetric(float64(len(specs))*float64(b.N)*1e9/float64(b.Elapsed().Nanoseconds()), "trials/s")
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if workers == 1 {
				serialNsPerOp = nsPerOp
			} else if serialNsPerOp > 0 {
				b.ReportMetric(serialNsPerOp/nsPerOp, "speedup-vs-serial")
			}
		})
	}
}

// BenchmarkRunnerWarmCache measures the fully cached path: every trial is a
// cache hit, so the campaign reduces to reading and decoding 20 JSON files.
func BenchmarkRunnerWarmCache(b *testing.B) {
	specs := runnerBenchGrid()
	ctx := context.Background()
	dir := b.TempDir()
	if _, _, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{CacheDir: dir}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := gurita.RunCampaign(ctx, specs, gurita.CampaignOptions{CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Executed != 0 {
			b.Fatalf("warm cache executed %d simulations", stats.Executed)
		}
	}
}
