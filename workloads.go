package gurita

import (
	"io"

	"gurita/internal/coflow"
	"gurita/internal/metrics"
	"gurita/internal/trace"
	"gurita/internal/workload"
)

// Workload structure selectors (re-exported).
const (
	// StructureSingle replays coflows as single-stage jobs.
	StructureSingle = workload.StructureSingle
	// StructureFBTao grafts the Facebook TAO fan-in DAG.
	StructureFBTao = workload.StructureFBTao
	// StructureTPCDS grafts the TPC-DS query-42 DAG.
	StructureTPCDS = workload.StructureTPCDS
	// StructureMixed draws from the production shape mix of [28].
	StructureMixed = workload.StructureMixed
)

// Structure selects a DAG family for generated workloads.
type Structure = workload.Structure

// Arrival processes (re-exported).
type (
	// ArrivalProcess produces inter-arrival gaps.
	ArrivalProcess = workload.ArrivalProcess
	// PoissonArrivals with a rate in jobs/second.
	PoissonArrivals = workload.Poisson
	// BurstyArrivals models the paper's bursty scenario (2 µs intra-burst
	// gaps, long quiet periods).
	BurstyArrivals = workload.Bursty
	// UniformArrivals with a constant gap.
	UniformArrivals = workload.Uniform
	// GraftConfig parameterizes grafting DAGs onto benchmark traces.
	GraftConfig = workload.GraftConfig
	// TraceCoflow is one coflow of a benchmark-format trace.
	TraceCoflow = trace.CoflowSpec
)

// GenerateWorkload synthesizes a multi-stage workload from distributions
// matching the published Facebook-trace statistics (sizes spanning Table 1,
// narrow-biased widths, Poisson or bursty arrivals). Deterministic in
// Config.Seed.
func GenerateWorkload(cfg WorkloadConfig) ([]*Job, error) {
	return workload.Generate(cfg)
}

// SynthesizeTrace produces a coflow-benchmark-format trace shaped like the
// Facebook 150-rack trace, for use when the real (non-redistributable)
// FB2010-1Hr-150-0.txt is unavailable.
func SynthesizeTrace(numCoflows, numRacks int, seed int64) []TraceCoflow {
	return workload.SynthesizeBenchmark(numCoflows, numRacks, seed)
}

// ParseTrace reads a coflow-benchmark trace (e.g. the real Facebook trace).
func ParseTrace(r io.Reader) (numRacks int, coflows []TraceCoflow, err error) {
	return trace.ParseBenchmark(r)
}

// WriteTrace writes coflows in the coflow-benchmark format.
func WriteTrace(w io.Writer, numRacks int, coflows []TraceCoflow) error {
	return trace.WriteBenchmark(w, numRacks, coflows)
}

// GraftTrace builds multi-stage jobs from trace coflows by replicating each
// coflow across the nodes of a DAG template (§V: "Each DAG structure is
// made up of coflows that are exact replications of jobs taken from the
// original trace").
func GraftTrace(coflows []TraceCoflow, numRacks int, cfg GraftConfig) ([]*Job, error) {
	return workload.FromBenchmark(coflows, numRacks, cfg)
}

// WriteJobs serializes jobs in the native JSON workload format.
func WriteJobs(w io.Writer, jobs []*Job) error { return trace.WriteJobs(w, jobs) }

// ReadJobs parses the native JSON workload format.
func ReadJobs(r io.Reader) ([]*Job, error) { return trace.ReadJobs(r) }

// CriticalPathLength returns the weight of a job's heaviest leaf-to-root
// path with per-coflow weight CCT ≈ largestFlow/rate.
func CriticalPathLength(j *Job, rate float64) float64 {
	return coflow.CriticalPathLength(j, coflow.CCTWeight(rate))
}

// CriticalCoflows returns the IDs of coflows on at least one critical path.
func CriticalCoflows(j *Job, rate float64) map[CoflowID]bool {
	return coflow.CriticalSet(j, coflow.CCTWeight(rate))
}

// --- metrics re-exports ---

// Table 1 categories.
const (
	CategoryI   = metrics.CategoryI
	CategoryII  = metrics.CategoryII
	CategoryIII = metrics.CategoryIII
	CategoryIV  = metrics.CategoryIV
	CategoryV   = metrics.CategoryV
	CategoryVI  = metrics.CategoryVI
	CategoryVII = metrics.CategoryVII
	// NumCategories is 7.
	NumCategories = metrics.NumCategories
)

// CategoryOf places a job's total bytes into a Table 1 category.
func CategoryOf(totalBytes int64) Category { return metrics.CategoryOf(totalBytes) }

// Summarize computes JCT statistics.
func Summarize(values []float64) Summary { return metrics.Summarize(values) }

// JCTs extracts per-job completion times from a result.
func JCTs(r *Result) []float64 { return metrics.JCTs(r) }

// Improvement is the paper's factor: baseline average JCT over target's
// (>1 ⇒ target faster).
func Improvement(baseline, target *Result) float64 { return metrics.Improvement(baseline, target) }

// PairedImprovement is the mean of per-job JCT ratios across two runs of
// the identical workload — every job weighted equally (Figure 5's
// aggregate).
func PairedImprovement(baseline, target *Result) float64 {
	return metrics.PairedImprovement(baseline, target)
}

// ImprovementByCategory computes per-category improvement factors
// (Figures 6–8).
func ImprovementByCategory(baseline, target *Result) map[Category]float64 {
	return metrics.ImprovementByCategory(baseline, target)
}

// RenderTable renders a fixed-width text table.
func RenderTable(header []string, rows [][]string) string { return metrics.Table(header, rows) }

// WriteResultJSON serializes a run's results (per-job rows, optionally
// per-coflow rows) for external analysis and plotting tools.
func WriteResultJSON(w io.Writer, r *Result, includeCoflows bool) error {
	return metrics.WriteResultJSON(w, r, includeCoflows)
}

// UtilizationCollector samples per-tier fabric load through Scenario.Probe.
type UtilizationCollector = metrics.UtilizationCollector

// NewUtilizationCollector builds a collector for one fabric; pass its Probe
// method as Scenario.Probe.
func NewUtilizationCollector(t *Topology) *UtilizationCollector {
	return metrics.NewUtilizationCollector(t)
}
